// Async request layer over the batch solver and the canonical cache.
//
// Callers that know several profiles ahead of needing the answers —
// tournaments enumerating their mixes, deviation scans enumerating every
// candidate window — submit() them all, then drain() once: the service
// deduplicates the requests onto canonical symmetry-class keys, answers
// what it can from the shared NetworkSolveCache, and solves the misses
// through one try_solve_classes_batch lockstep call (chunked across a
// parallel::ThreadPool when one is provided). Results are bitwise
// identical to per-request NetworkSolveCache::solve calls, and the cache
// traffic counters advance exactly as the same requests would have
// advanced them sequentially — so stats printed by benches are
// independent of batching and of --jobs.
//
// Threading: submit() and solve() are safe from any thread. drain() is
// serialized internally; it must not be called from a task running on the
// same ThreadPool the service chunks over (the pool's no-nested-blocking
// rule). The default configuration has no pool and drains inline, which
// is always safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "analytical/batch_solver.hpp"
#include "analytical/solver_cache.hpp"

namespace smac::parallel {
class ThreadPool;
}

namespace smac::analytical {

/// Batched, cached front end to the class-space solver.
class SolverService {
 public:
  struct Options {
    /// Model options shared by every solve (initial_tau is stripped —
    /// the cache key must stay pure; see NetworkSolveCache).
    SolverOptions solver;
    /// Insert cap forwarded to the owned NetworkSolveCache.
    std::size_t max_cache_entries = 1 << 16;
    /// Instances per pool task when a pool is set; also the unit in which
    /// an inline drain walks the miss list. Purely a scheduling knob —
    /// results do not depend on it.
    std::size_t chunk_size = 64;
    /// Warm-start cache misses from the nearest cached neighbor key
    /// (NetworkSolveCache::neighbor_hint). Off by default: hinted solves
    /// can differ from cold solves in the last ulp and are therefore
    /// answered to the requester but never inserted into the cache, so
    /// this mode trades the bitwise-reproducibility of *service* results
    /// (not cache purity) for faster convergence on sweep workloads.
    bool warm_start_neighbors = false;
    /// Optional pool to chunk miss batches across. Not owned; must
    /// outlive the service. nullptr solves misses on the draining thread.
    parallel::ThreadPool* pool = nullptr;
  };

  /// Handle to one submitted request. Cheap to copy; result() drains the
  /// owning service as needed, so a ticket can be redeemed at any time
  /// after submit(). Tickets must not outlive the service.
  class Ticket {
   public:
    Ticket() = default;

    /// True once a drain has fulfilled this request.
    bool ready() const noexcept {
      return request_ != nullptr &&
             request_->done.load(std::memory_order_acquire);
    }

    /// The per-node solve result (bitwise equal to
    /// NetworkSolveCache::solve on the same inputs). Drains the service
    /// if the request is still pending; blocks while another thread's
    /// drain is processing it. Throws if the ticket is default-made.
    const TrySolveResult& result() const;

   private:
    friend class SolverService;
    struct Request {
      std::vector<int> w;
      /// Set (with class_level) by submit_classes: the request is already
      /// in canonical class space and its result stays collapsed.
      ClassProfile classes;
      bool class_level = false;
      int max_stage = 0;
      double packet_error_rate = 0.0;
      TrySolveResult result;
      std::atomic<bool> done{false};
    };
    Ticket(const SolverService* service, std::shared_ptr<Request> request)
        : service_(service), request_(std::move(request)) {}

    const SolverService* service_ = nullptr;
    std::shared_ptr<Request> request_;
  };

  SolverService() : SolverService(Options{}) {}
  explicit SolverService(Options options);

  /// Enqueues one (profile, max_stage, PER) request. No solving happens
  /// until drain() — submit everything a phase needs first.
  Ticket submit(std::vector<int> w, int max_stage,
                double packet_error_rate) const;

  /// Enqueues one *pre-classified* request. `classes` must be canonical —
  /// windows strictly ascending, multiplicities >= 1, exactly what
  /// classify_profile produces (class_of may be empty; only the
  /// window/multiplicity multiset is used here). The ticket's result
  /// stays in class space (state size == class_count); callers expand
  /// with their own class_of maps via expand_classes. Shares cache keys,
  /// dedup groups, and traffic accounting with submit(), so a class-level
  /// and a per-node request for the same multiset cost one solve. The
  /// city-scale path (multihop::price_neighborhoods) lives on this entry:
  /// a 10^4-node stage submits only its distinct neighborhood classes.
  Ticket submit_classes(ClassProfile classes, int max_stage,
                        double packet_error_rate) const;

  /// Fulfills every pending request: answers duplicates and cached keys
  /// from the NetworkSolveCache, batch-solves the distinct misses, adopts
  /// the results. Requests submitted concurrently with a drain land in
  /// the next drain.
  void drain() const;

  /// Blocking single solve, bypassing the queue: exactly
  /// NetworkSolveCache::solve (same result bits, same stats accounting).
  TrySolveResult solve(const std::vector<int>& w, int max_stage,
                       double packet_error_rate) const;

  /// Number of requests waiting for the next drain().
  std::size_t pending() const;

  SolveCacheStats cache_stats() const { return cache_.stats(); }
  const NetworkSolveCache& cache() const noexcept { return cache_; }

 private:
  Options options_;
  NetworkSolveCache cache_;
  mutable std::mutex queue_mutex_;  ///< guards pending_
  mutable std::vector<std::shared_ptr<Ticket::Request>> pending_;
  mutable std::mutex drain_mutex_;  ///< serializes drain bodies
};

}  // namespace smac::analytical
