// Per-node binary-exponential-backoff Markov chain (paper §III, Fig. 1).
//
// States are (j, k): backoff stage j ∈ [0, m] with window 2^j·W, counter
// k ∈ [0, 2^j·W − 1]. A node transmits whenever k = 0; with collision
// probability p it advances a stage (capped at m), otherwise it returns to
// stage 0. The chain's stationary distribution yields the per-slot
// transmission probability
//
//   τ(W, p) = 2 / (1 + W + p·W·Σ_{r=0}^{m−1} (2p)^r)            (paper eq. 2)
//
// which is the only quantity the network-level fixed point needs; the full
// distribution is also exposed for validation.
#pragma once

#include <cstdint>
#include <vector>

namespace smac::analytical {

/// Transmission probability τ of a node with initial window W and
/// conditional collision probability p, with m doubling stages.
///
/// Implemented through the geometric sum form, which stays finite at the
/// removable singularity p = 1/2 of the closed form (paper eq. 2).
/// Preconditions: W >= 1, p in [0, 1), m >= 0.
double transmission_probability(int w, double p, int max_stage);

/// Continuous-W relaxation of τ(W, p); used to invert τ ↦ W when mapping
/// the continuous optimizer τ_c* (Lemma 3) back onto a contention window.
double transmission_probability_cont(double w, double p, int max_stage);

/// ∂τ/∂p < 0 region check helper: τ is strictly decreasing in both W and p;
/// exposed mainly for property tests and the monotonicity lemmas.
double transmission_probability_derivative_w(int w, double p, int max_stage);

/// Full stationary distribution of the (stage, counter) chain for one node.
class BackoffChain {
 public:
  /// Builds the chain for initial window `w`, collision probability `p`
  /// and maximum stage `max_stage` (m). Throws std::invalid_argument on
  /// out-of-range inputs (w < 1, p outside [0,1), max_stage < 0).
  BackoffChain(int w, double p, int max_stage);

  int initial_window() const noexcept { return w_; }
  double collision_probability() const noexcept { return p_; }
  int max_stage() const noexcept { return m_; }

  /// Window size 2^j·W of stage j (j clamped to [0, m]).
  std::int64_t window_of_stage(int j) const;

  /// Stationary probability q(j, k). k must lie in [0, window_of_stage(j)).
  double stationary(int j, int k) const;

  /// q(j, 0): probability of being at the head of stage j.
  double stage_head(int j) const;

  /// τ = Σ_j q(j, 0): per-slot transmission probability.
  double tau() const noexcept { return tau_; }

  /// Σ over all states; equals 1 up to rounding (validation hook).
  double total_mass() const;

  /// Expected backoff counter value (mean residual waiting, in slots).
  double mean_counter() const;

 private:
  int w_;
  double p_;
  int m_;
  double q00_;  ///< q(0,0) from the normalization condition
  double tau_;
};

}  // namespace smac::analytical
