// Network-level fixed point of the extended (heterogeneous) Bianchi model.
//
// Couples each node's backoff chain τ_i = τ(W_i, p_i) with the channel
// feedback p_i = 1 − Π_{j≠i}(1 − τ_j) (paper eqs. 2–3): 2n equations in
// (τ_1..τ_n, p_1..p_n). Nodes may hold *different* contention windows —
// the selfish setting the paper models — so no symmetry reduction is
// assumed in the general solver; a fast scalar path handles the
// homogeneous case exactly.
#pragma once

#include <vector>

#include "util/fixed_point.hpp"

namespace smac::analytical {

/// Solution of the coupled (τ, p) system for one CW profile.
struct NetworkState {
  std::vector<double> tau;  ///< per-node transmission probability
  std::vector<double> p;    ///< per-node conditional collision probability
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
};

struct SolverOptions {
  double damping = 0.5;
  double tolerance = 1e-13;
  int max_iterations = 20000;
};

/// Outcome classification of the non-throwing solver entry points.
///
///   kConverged — residual below tolerance; the state is the fixed point.
///   kDegraded  — the retry ladder exhausted its rungs but the best
///                iterate's residual is small (≤ kDegradedResidual); the
///                state is usable as an approximation and callers should
///                carry the diagnostics forward (DegradationReport).
///   kFailed    — no rung produced a usable iterate (or the inputs were
///                invalid); the state holds the best effort, clamped to
///                [0, 1], and must not be trusted.
enum class SolveStatus { kConverged, kDegraded, kFailed };

/// Residual threshold separating kDegraded from kFailed.
inline constexpr double kDegradedResidual = 1e-6;

/// What the retry ladder did to produce a result.
struct SolveDiagnostics {
  SolveStatus status = SolveStatus::kConverged;
  int iterations = 0;      ///< total across every ladder rung attempted
  int retries = 0;         ///< rungs attempted beyond the first
  double residual = 0.0;   ///< residual of the returned state
  /// Rung that produced the returned state: "damped", "redamped",
  /// "restart", "bisection", or "invalid" (bad inputs).
  const char* method = "damped";
};

constexpr bool usable(SolveStatus s) noexcept {
  return s != SolveStatus::kFailed;
}

const char* to_string(SolveStatus status) noexcept;

struct TrySolveResult {
  NetworkState state;
  SolveDiagnostics diagnostics;
};

struct TryTauResult {
  double tau = 0.0;
  SolveDiagnostics diagnostics;
};

/// Non-throwing heterogeneous solve with a retry ladder. Never throws and
/// never returns non-finite values: on non-convergence it escalates —
/// stronger damping, restart from a high-collision initial point, and (for
/// homogeneous profiles) a bisection fallback — and reports how far it got
/// in the diagnostics. Invalid inputs (empty profile, w < 1, PER outside
/// [0, 1)) yield kFailed with an empty state instead of throwing.
/// Sweeps and repeated games should prefer this entry point; the throwing
/// solve_network below delegates here.
TrySolveResult try_solve_network(const std::vector<int>& w, int max_stage,
                                 const SolverOptions& opts = {},
                                 double packet_error_rate = 0.0);

/// Non-throwing homogeneous τ: Brent first, plain bisection as the
/// fallback rung (the bracket [0, 1] always holds a sign change). Invalid
/// inputs yield kFailed with τ = 0.
TryTauResult try_homogeneous_tau(double w, int n, int max_stage,
                                 double packet_error_rate = 0.0);

/// Solves the heterogeneous system for contention-window profile `w`
/// (one entry per node, each >= 1) with maximum backoff stage `max_stage`.
/// For n = 1 the collision probability is identically zero.
/// Throws std::invalid_argument on empty or invalid profiles; otherwise
/// delegates to try_solve_network (same retry ladder, NetworkState::
/// converged reflects SolveStatus::kConverged).
/// `packet_error_rate` adds channel-noise losses: the backoff chain
/// escalates on failure probability 1 − (1 − p_i)(1 − PER), while the
/// returned NetworkState::p stays the *collision* probability (channel
/// feedback), matching the utility u = τ((1−p)(1−PER)g − e)/T_slot.
NetworkState solve_network(const std::vector<int>& w, int max_stage,
                           const SolverOptions& opts = {},
                           double packet_error_rate = 0.0);

/// Homogeneous fast path: all n nodes on window `w`. Solved as a scalar
/// root problem (Brent), typically ~40 evaluations, machine precision.
/// `w` is continuous to support inverting τ ↦ W.
NetworkState solve_network_homogeneous(double w, int n, int max_stage,
                                       double packet_error_rate = 0.0);

/// τ of the homogeneous fixed point only (cheap; used inside sweeps).
/// Throws std::invalid_argument on bad inputs and std::runtime_error when
/// even the try_homogeneous_tau ladder reports kFailed.
double homogeneous_tau(double w, int n, int max_stage,
                       double packet_error_rate = 0.0);

/// Inverts the homogeneous model: the (continuous) window w such that the
/// n-node fixed point transmits with probability `tau_target`. Monotone
/// bisection over w ∈ [1, w_hi]; expands w_hi as needed. Returns w clamped
/// to >= 1 when even w = 1 yields τ < tau_target, and clamped to the
/// expansion cap kWindowForTauCap when no window up to the cap reaches a
/// τ as small as `tau_target` (instead of aborting a sweep mid-run).
double window_for_tau(double tau_target, int n, int max_stage);

/// Upper clamp of window_for_tau's bracket expansion.
inline constexpr double kWindowForTauCap = 1e9;

}  // namespace smac::analytical
