// Network-level fixed point of the extended (heterogeneous) Bianchi model.
//
// Couples each node's backoff chain τ_i = τ(W_i, p_i) with the channel
// feedback p_i = 1 − Π_{j≠i}(1 − τ_j) (paper eqs. 2–3): 2n equations in
// (τ_1..τ_n, p_1..p_n). Nodes may hold *different* contention windows —
// the selfish setting the paper models — but almost every profile the
// game layers produce has only a handful of *distinct* windows (TFT
// trajectories converge to a common W; deviation tests are one deviant
// against n − 1 conformers). The solver therefore collapses the profile
// into k symmetry classes of identical (W, multiplicity m) and iterates
// the k-dimensional system
//
//   p_c = 1 − (1 − τ_c)^(m_c − 1) · Π_{c'≠c} (1 − τ_{c'})^{m_{c'}}
//
// expanding back to per-node vectors afterwards — O(k) per iteration
// instead of O(n), identical fixed point (nodes of one class are
// exchangeable, so the solution is class-symmetric). The k = 1 case
// delegates to the scalar Brent path; the pre-collapse full-dimension
// kernel is kept as try_solve_network_full for validation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/fixed_point.hpp"

namespace smac::analytical {

/// Solution of the coupled (τ, p) system for one CW profile.
struct NetworkState {
  std::vector<double> tau;  ///< per-node transmission probability
  std::vector<double> p;    ///< per-node conditional collision probability
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
};

struct SolverOptions {
  double damping = 0.5;
  double tolerance = 1e-13;
  int max_iterations = 20000;
  /// Optional warm start: per-node (size n) or per-class (size k) initial
  /// τ, tried as the first ladder rung before the canonical starts. Sizes
  /// that match neither are ignored. A warm start changes only the
  /// iteration path, never the fixed point beyond the tolerance — but the
  /// last-ulp bits of the result may differ from a cold solve, so callers
  /// feeding bit-identical caches must stick to the canonical (empty)
  /// start; see NetworkSolveCache.
  std::vector<double> initial_tau;
};

/// Outcome classification of the non-throwing solver entry points.
///
///   kConverged — residual below tolerance; the state is the fixed point.
///   kDegraded  — the retry ladder exhausted its rungs but the best
///                iterate's residual is small (≤ kDegradedResidual); the
///                state is usable as an approximation and callers should
///                carry the diagnostics forward (DegradationReport).
///   kFailed    — no rung produced a usable iterate (or the inputs were
///                invalid); the state holds the best effort, clamped to
///                [0, 1], and must not be trusted.
enum class SolveStatus { kConverged, kDegraded, kFailed };

/// Residual threshold separating kDegraded from kFailed.
inline constexpr double kDegradedResidual = 1e-6;

/// What the retry ladder did to produce a result.
struct SolveDiagnostics {
  SolveStatus status = SolveStatus::kConverged;
  int iterations = 0;      ///< total across every ladder rung attempted
  int retries = 0;         ///< rungs attempted beyond the first
  double residual = 0.0;   ///< residual of the returned state
  /// Rung that produced the returned state: "warm" (caller's initial_tau),
  /// "seeded" (homogeneous-mean start), "damped", "redamped", "restart",
  /// "polish" (continuation from the best iterate of the earlier rungs),
  /// "bisection"/"brent"/"closed-form" (scalar k = 1 path), or "invalid"
  /// (bad inputs).
  const char* method = "damped";
};

constexpr bool usable(SolveStatus s) noexcept {
  return s != SolveStatus::kFailed;
}

const char* to_string(SolveStatus status) noexcept;

struct TrySolveResult {
  NetworkState state;
  SolveDiagnostics diagnostics;
};

struct TryTauResult {
  double tau = 0.0;
  SolveDiagnostics diagnostics;
};

/// Symmetry-class decomposition of a contention-window profile: the
/// distinct windows in ascending order, their multiplicities, and the
/// node → class map. The canonical (sorted) ordering makes every
/// permutation of a profile collapse to the same class system — the basis
/// of both the solver's O(k) iteration and the cache's permutation hits.
struct ClassProfile {
  std::vector<int> window;             ///< distinct windows, ascending
  std::vector<int> multiplicity;       ///< same length as window
  std::vector<std::int32_t> class_of;  ///< node index → class index

  std::size_t node_count() const noexcept { return class_of.size(); }
  std::size_t class_count() const noexcept { return window.size(); }
};

/// Builds the class decomposition of `w` (any profile, no validation).
ClassProfile classify_profile(const std::vector<int>& w);

/// Expands a class-space solution (tau/p of size k) to per-node vectors
/// in the original node order. Nodes of one class get bitwise-identical
/// values, so solve_network(perm(w)) == perm(solve_network(w)) exactly.
NetworkState expand_classes(const NetworkState& class_state,
                            const ClassProfile& classes);

/// Class-space solve: the retry ladder run on the collapsed k-dimensional
/// system. The returned state's tau/p have one entry per *class* (use
/// expand_classes for per-node vectors). Inputs are assumed valid
/// (non-empty classes, windows >= 1, max_stage >= 0, PER in [0, 1)).
TrySolveResult try_solve_classes(const ClassProfile& classes, int max_stage,
                                 const SolverOptions& opts = {},
                                 double packet_error_rate = 0.0);

/// Non-throwing heterogeneous solve with a retry ladder. Never throws and
/// never returns non-finite values: on non-convergence it escalates —
/// a homogeneous-mean seeded start, stronger damping, and a restart from
/// a high-collision initial point — and reports how far it got in the
/// diagnostics. Invalid inputs (empty profile, w < 1, PER outside [0, 1))
/// yield kFailed with an empty state instead of throwing.
/// Sweeps and repeated games should prefer this entry point; the throwing
/// solve_network below delegates here.
TrySolveResult try_solve_network(const std::vector<int>& w, int max_stage,
                                 const SolverOptions& opts = {},
                                 double packet_error_rate = 0.0);

/// Pre-collapse reference kernel: the full 2n-dimensional damped ladder
/// iterating one equation per *node*. Kept for validation — tests and
/// bench_solver_json assert the collapsed kernel agrees to <= 1e-12 —
/// and for profiling the collapse win. Same contract as
/// try_solve_network (initial_tau honored per node when sized n).
TrySolveResult try_solve_network_full(const std::vector<int>& w,
                                      int max_stage,
                                      const SolverOptions& opts = {},
                                      double packet_error_rate = 0.0);

/// Non-throwing homogeneous τ: Brent first, plain bisection as the
/// fallback rung (the bracket [0, 1] always holds a sign change). Invalid
/// inputs yield kFailed with τ = 0.
TryTauResult try_homogeneous_tau(double w, int n, int max_stage,
                                 double packet_error_rate = 0.0);

/// Solves the heterogeneous system for contention-window profile `w`
/// (one entry per node, each >= 1) with maximum backoff stage `max_stage`.
/// For n = 1 the collision probability is identically zero.
/// Throws std::invalid_argument on empty or invalid profiles; otherwise
/// delegates to try_solve_network (same retry ladder, NetworkState::
/// converged reflects SolveStatus::kConverged).
/// `packet_error_rate` adds channel-noise losses: the backoff chain
/// escalates on failure probability 1 − (1 − p_i)(1 − PER), while the
/// returned NetworkState::p stays the *collision* probability (channel
/// feedback), matching the utility u = τ((1−p)(1−PER)g − e)/T_slot.
NetworkState solve_network(const std::vector<int>& w, int max_stage,
                           const SolverOptions& opts = {},
                           double packet_error_rate = 0.0);

/// Homogeneous fast path: all n nodes on window `w`. Solved as a scalar
/// root problem (Brent), typically ~40 evaluations, machine precision.
/// `w` is continuous to support inverting τ ↦ W.
NetworkState solve_network_homogeneous(double w, int n, int max_stage,
                                       double packet_error_rate = 0.0);

/// τ of the homogeneous fixed point only (cheap; used inside sweeps).
/// Throws std::invalid_argument on bad inputs and std::runtime_error when
/// even the try_homogeneous_tau ladder reports kFailed.
double homogeneous_tau(double w, int n, int max_stage,
                       double packet_error_rate = 0.0);

/// Inverts the homogeneous model: the (continuous) window w such that the
/// n-node fixed point transmits with probability `tau_target`. Monotone
/// bisection over w ∈ [1, w_hi]; expands w_hi as needed. Returns w clamped
/// to >= 1 when even w = 1 yields τ < tau_target, and clamped to the
/// expansion cap kWindowForTauCap when no window up to the cap reaches a
/// τ as small as `tau_target` (instead of aborting a sweep mid-run).
double window_for_tau(double tau_target, int n, int max_stage);

/// Upper clamp of window_for_tau's bracket expansion.
inline constexpr double kWindowForTauCap = 1e9;

}  // namespace smac::analytical
