// Network-level fixed point of the extended (heterogeneous) Bianchi model.
//
// Couples each node's backoff chain τ_i = τ(W_i, p_i) with the channel
// feedback p_i = 1 − Π_{j≠i}(1 − τ_j) (paper eqs. 2–3): 2n equations in
// (τ_1..τ_n, p_1..p_n). Nodes may hold *different* contention windows —
// the selfish setting the paper models — so no symmetry reduction is
// assumed in the general solver; a fast scalar path handles the
// homogeneous case exactly.
#pragma once

#include <vector>

#include "util/fixed_point.hpp"

namespace smac::analytical {

/// Solution of the coupled (τ, p) system for one CW profile.
struct NetworkState {
  std::vector<double> tau;  ///< per-node transmission probability
  std::vector<double> p;    ///< per-node conditional collision probability
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
};

struct SolverOptions {
  double damping = 0.5;
  double tolerance = 1e-13;
  int max_iterations = 20000;
};

/// Solves the heterogeneous system for contention-window profile `w`
/// (one entry per node, each >= 1) with maximum backoff stage `max_stage`.
/// For n = 1 the collision probability is identically zero.
/// Throws std::invalid_argument on empty or invalid profiles.
/// `packet_error_rate` adds channel-noise losses: the backoff chain
/// escalates on failure probability 1 − (1 − p_i)(1 − PER), while the
/// returned NetworkState::p stays the *collision* probability (channel
/// feedback), matching the utility u = τ((1−p)(1−PER)g − e)/T_slot.
NetworkState solve_network(const std::vector<int>& w, int max_stage,
                           const SolverOptions& opts = {},
                           double packet_error_rate = 0.0);

/// Homogeneous fast path: all n nodes on window `w`. Solved as a scalar
/// root problem (Brent), typically ~40 evaluations, machine precision.
/// `w` is continuous to support inverting τ ↦ W.
NetworkState solve_network_homogeneous(double w, int n, int max_stage,
                                       double packet_error_rate = 0.0);

/// τ of the homogeneous fixed point only (cheap; used inside sweeps).
double homogeneous_tau(double w, int n, int max_stage,
                       double packet_error_rate = 0.0);

/// Inverts the homogeneous model: the (continuous) window w such that the
/// n-node fixed point transmits with probability `tau_target`. Monotone
/// bisection over w ∈ [1, w_hi]; expands w_hi as needed. Returns w clamped
/// to >= 1 when even w = 1 yields τ < tau_target.
double window_for_tau(double tau_target, int n, int max_stage);

}  // namespace smac::analytical
