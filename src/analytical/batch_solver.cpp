#include "analytical/batch_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "analytical/backoff_chain.hpp"
#include "analytical/solver_detail.hpp"

namespace smac::analytical {

namespace {

/// Collapses a caller warm start into class space: accepts per-class
/// (size k, used as-is) or per-node (size n, class-averaged — the mean is
/// invariant under node permutations of a class-consistent hint). Any
/// other size, or non-finite entries, disqualifies the warm rung.
std::vector<double> collapse_initial_tau(const std::vector<double>& initial,
                                         const ClassProfile& classes) {
  const std::size_t k = classes.class_count();
  std::vector<double> tau0;
  if (initial.size() == k) {
    tau0 = initial;
  } else if (initial.size() == classes.node_count()) {
    tau0.assign(k, 0.0);
    for (std::size_t i = 0; i < initial.size(); ++i) {
      tau0[static_cast<std::size_t>(classes.class_of[i])] += initial[i];
    }
    for (std::size_t c = 0; c < k; ++c) {
      tau0[c] /= static_cast<double>(classes.multiplicity[c]);
    }
  } else {
    return {};
  }
  for (const double t : tau0) {
    if (!std::isfinite(t)) return {};
  }
  for (double& t : tau0) t = std::clamp(t, 0.0, 1.0);
  return tau0;
}

/// The retry-ladder rungs in attempt order (polish runs after the ladder
/// proper, continuing from the best iterate instead of a fresh start).
enum class Rung : std::uint8_t {
  kWarm = 0,
  kSeeded,
  kDamped,
  kRedamped,
  kRestart,
  kPolish,
  kDone,
};

/// Per-instance ladder state machine. One call to step() performs exactly
/// one damped iteration of util::solve_fixed_point's loop (same update,
/// same max-norm step, same iteration counting — including the
/// budget + 1 count a non-converged rung reports) or one rung transition,
/// so a machine driven to completion is bitwise identical to the
/// sequential try_solve_classes ladder it replaces.
class ClassSolveMachine {
 public:
  ClassSolveMachine(const ClassProfileInstance& instance, double* tau_slot)
      : inst_(instance),
        k_(instance.classes.class_count()),
        n_(static_cast<int>(instance.classes.node_count())),
        x_(tau_slot) {
    best_.residual = std::numeric_limits<double>::infinity();

    // k = 1: the profile is homogeneous — the whole system is one scalar
    // root problem, solved by the Brent/bisection ladder at machine
    // precision regardless of the caller's iteration budget.
    if (k_ == 1) {
      const TryTauResult tau = try_homogeneous_tau(
          static_cast<double>(inst_.classes.window[0]), n_, inst_.max_stage,
          inst_.packet_error_rate);
      if (usable(tau.diagnostics.status)) {
        result_.state.tau.assign(1, tau.tau);
        result_.state.p = detail::class_collision_probabilities(
            result_.state.tau, inst_.classes.multiplicity);
        result_.state.converged =
            tau.diagnostics.status == SolveStatus::kConverged;
        result_.state.iterations = tau.diagnostics.iterations;
        result_.state.residual = tau.diagnostics.residual;
        result_.diagnostics = tau.diagnostics;
        rung_ = Rung::kDone;
        return;
      }
      // Unusable scalar solve (cannot happen for validated inputs): fall
      // through to the damped ladder below.
    }
    enter_first_applicable(Rung::kWarm);
  }

  bool done() const noexcept { return rung_ == Rung::kDone; }

  /// One damped iteration (or a budget-exhaustion transition) of the
  /// current rung. `prefix`/`suffix` are caller scratch of size k + 1,
  /// `p` of size k — shared across the batch's instances within a sweep.
  void step(double* prefix, double* suffix, double* p) {
    if (iter_ > budget_) {
      finish_rung(/*converged=*/false, iter_);
      return;
    }
    // One solve_fixed_point iteration on the class map: p from the current
    // iterate, then x' = (1 − d)·τ(W, fail) + d·x with the max-norm step.
    detail::class_collision_probabilities_into(
        x_, inst_.classes.multiplicity.data(), k_, prefix, suffix, p);
    double step_norm = 0.0;
    for (std::size_t c = 0; c < k_; ++c) {
      const double fail =
          1.0 - (1.0 - p[c]) * (1.0 - inst_.packet_error_rate);
      const double fx =
          transmission_probability(inst_.classes.window[c], fail,
                                   inst_.max_stage);
      const double next = (1.0 - damping_) * fx + damping_ * x_[c];
      step_norm = std::max(step_norm, std::abs(next - x_[c]));
      x_[c] = next;
    }
    residual_ = step_norm;
    if (step_norm <= inst_.opts.tolerance) {
      finish_rung(/*converged=*/true, iter_);
    } else {
      ++iter_;
    }
  }

  /// Valid once done(): the ladder outcome, class-space.
  TrySolveResult take_result() { return std::move(result_); }

 private:
  /// Seeds the arena and iteration bookkeeping for `rung`, skipping rungs
  /// whose start vector is unavailable (no caller warm start, unusable
  /// homogeneous seed). Start vectors are pure functions of the instance,
  /// so computing them lazily here — instead of all up front as the
  /// pre-batch ladder did — changes which ones are computed, never a
  /// value that reaches the result.
  void enter_first_applicable(Rung rung) {
    for (;;) {
      switch (rung) {
        case Rung::kWarm: {
          if (!inst_.opts.initial_tau.empty()) {
            const std::vector<double> warm =
                collapse_initial_tau(inst_.opts.initial_tau, inst_.classes);
            if (!warm.empty()) {
              begin_rung(rung, warm.data(), inst_.opts.damping, 1);
              return;
            }
          }
          rung = Rung::kSeeded;
          break;
        }
        case Rung::kSeeded: {
          // Homogeneous-mean start: every class seeded from the mean-window
          // fixed point (mean in canonical class order) — close enough to
          // the heterogeneous fixed point that starved iteration budgets
          // converge where the cold start only degrades.
          double mean_window = 0.0;
          for (std::size_t c = 0; c < k_; ++c) {
            mean_window +=
                static_cast<double>(inst_.classes.multiplicity[c]) *
                static_cast<double>(inst_.classes.window[c]);
          }
          mean_window /= static_cast<double>(n_);
          const TryTauResult hom = try_homogeneous_tau(
              mean_window, n_, inst_.max_stage, inst_.packet_error_rate);
          if (usable(hom.diagnostics.status)) {
            const double p_hom =
                n_ == 1 ? 0.0 : 1.0 - detail::ipow(1.0 - hom.tau, n_ - 1);
            const double fail_hom =
                1.0 - (1.0 - p_hom) * (1.0 - inst_.packet_error_rate);
            std::vector<double> seeded(k_);
            for (std::size_t c = 0; c < k_; ++c) {
              seeded[c] = transmission_probability(
                  inst_.classes.window[c], fail_hom, inst_.max_stage);
            }
            begin_rung(rung, seeded.data(), inst_.opts.damping, 1);
            return;
          }
          rung = Rung::kDamped;
          break;
        }
        case Rung::kDamped: {
          begin_rung(rung, cold_start().data(), inst_.opts.damping, 1);
          return;
        }
        case Rung::kRedamped: {
          begin_rung(rung, cold_start().data(),
                     std::max(inst_.opts.damping, 0.85), 2);
          return;
        }
        case Rung::kRestart: {
          std::vector<double> hot(k_);
          for (std::size_t c = 0; c < k_; ++c) {
            hot[c] = transmission_probability(inst_.classes.window[c], 0.9,
                                              inst_.max_stage);
          }
          begin_rung(rung, hot.data(), std::max(inst_.opts.damping, 0.95), 2);
          return;
        }
        case Rung::kPolish: {
          // Every ladder rung restarts from a fixed point-agnostic start,
          // discarding its predecessors' progress; continuing from the
          // best iterate compounds it — under starved budgets this turns
          // near-miss kDegraded outcomes into kConverged.
          if (!best_.converged && std::isfinite(best_.residual) &&
              best_.tau.size() == k_) {
            begin_rung(rung, best_.tau.data(), inst_.opts.damping, 2);
            return;
          }
          finish();
          return;
        }
        case Rung::kDone:
          finish();
          return;
      }
    }
  }

  std::vector<double> cold_start() const {
    std::vector<double> cold(k_);
    for (std::size_t c = 0; c < k_; ++c) {
      cold[c] = transmission_probability(inst_.classes.window[c], 0.0,
                                         inst_.max_stage);
    }
    return cold;
  }

  void begin_rung(Rung rung, const double* start, double damping,
                  int iteration_scale) {
    if (damping < 0.0 || damping >= 1.0) {
      throw std::invalid_argument(
          "solve_fixed_point: damping must be in [0,1)");
    }
    rung_ = rung;
    damping_ = damping;
    budget_ = inst_.opts.max_iterations * iteration_scale;
    iter_ = 1;
    residual_ = 0.0;
    std::copy(start, start + k_, x_);
  }

  /// Ends the current rung exactly as the sequential ladder did: fold the
  /// (sanitized) iterate into `best`, then break out, advance, or polish.
  void finish_rung(bool converged, int iterations) {
    total_iterations_ += iterations;
    NetworkState state;
    state.tau.assign(x_, x_ + k_);
    detail::sanitize_probabilities(state.tau);
    state.p = detail::class_collision_probabilities(
        state.tau, inst_.classes.multiplicity);
    state.converged = converged;
    state.iterations = iterations;
    state.residual = residual_;

    if (rung_ == Rung::kPolish) {
      ++retries_;
      if (state.converged || state.residual < best_.residual) {
        best_ = std::move(state);
        best_method_ = "polish";
      }
      finish();
      return;
    }

    if (state.converged || state.residual < best_.residual) {
      best_ = std::move(state);
      best_method_ = method_name(rung_);
    }
    if (best_.converged) {
      finish();
      return;
    }
    ++retries_;
    enter_first_applicable(next_rung(rung_));
  }

  void finish() {
    result_.diagnostics.iterations = total_iterations_;
    result_.diagnostics.retries = retries_;
    result_.diagnostics.residual = best_.residual;
    result_.diagnostics.method = best_method_;
    result_.diagnostics.status =
        best_.converged ? SolveStatus::kConverged
        : best_.residual <= kDegradedResidual ? SolveStatus::kDegraded
                                              : SolveStatus::kFailed;
    best_.converged = result_.diagnostics.status == SolveStatus::kConverged;
    result_.state = std::move(best_);
    rung_ = Rung::kDone;
  }

  static Rung next_rung(Rung rung) {
    switch (rung) {
      case Rung::kWarm: return Rung::kSeeded;
      case Rung::kSeeded: return Rung::kDamped;
      case Rung::kDamped: return Rung::kRedamped;
      case Rung::kRedamped: return Rung::kRestart;
      case Rung::kRestart: return Rung::kPolish;
      case Rung::kPolish:
      case Rung::kDone: return Rung::kDone;
    }
    return Rung::kDone;
  }

  static const char* method_name(Rung rung) {
    switch (rung) {
      case Rung::kWarm: return "warm";
      case Rung::kSeeded: return "seeded";
      case Rung::kDamped: return "damped";
      case Rung::kRedamped: return "redamped";
      case Rung::kRestart: return "restart";
      case Rung::kPolish: return "polish";
      case Rung::kDone: return "damped";
    }
    return "damped";
  }

  const ClassProfileInstance& inst_;
  std::size_t k_;
  int n_;
  double* x_;  ///< this instance's segment of the batch tau arena

  Rung rung_ = Rung::kDamped;
  double damping_ = 0.5;
  int budget_ = 0;
  int iter_ = 1;
  double residual_ = 0.0;

  NetworkState best_;
  const char* best_method_ = "damped";
  int total_iterations_ = 0;
  int retries_ = 0;
  TrySolveResult result_;
};

}  // namespace

std::vector<TrySolveResult> try_solve_classes_batch(
    std::span<const ClassProfileInstance> instances) {
  const std::size_t count = instances.size();
  std::vector<TrySolveResult> results(count);
  if (count == 0) return results;

  // Contiguous per-class tau arena: instance i iterates in place on
  // [offset[i], offset[i] + k_i), so a sweep touches one flat array.
  std::vector<std::size_t> offset(count);
  std::size_t total_k = 0;
  std::size_t max_k = 0;
  for (std::size_t i = 0; i < count; ++i) {
    offset[i] = total_k;
    total_k += instances[i].classes.class_count();
    max_k = std::max(max_k, instances[i].classes.class_count());
  }
  std::vector<double> tau_arena(total_k, 0.0);
  std::vector<double> prefix(max_k + 1);
  std::vector<double> suffix(max_k + 1);
  std::vector<double> p(max_k);

  std::vector<ClassSolveMachine> machines;
  machines.reserve(count);
  std::vector<std::uint32_t> active;
  active.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    machines.emplace_back(instances[i], tau_arena.data() + offset[i]);
    if (machines.back().done()) {
      results[i] = machines.back().take_result();
    } else {
      active.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Lockstep sweeps: every active instance advances one damped iteration
  // per sweep; finished instances are masked out in place (stable order,
  // so the arena is walked front to back every sweep).
  while (!active.empty()) {
    std::size_t kept = 0;
    for (const std::uint32_t i : active) {
      ClassSolveMachine& machine = machines[i];
      machine.step(prefix.data(), suffix.data(), p.data());
      if (machine.done()) {
        results[i] = machine.take_result();
      } else {
        active[kept++] = i;
      }
    }
    active.resize(kept);
  }
  return results;
}

}  // namespace smac::analytical
