#include "analytical/solver_cache.hpp"

namespace smac::analytical {

NetworkSolveCache::NetworkSolveCache(SolverOptions opts,
                                     std::size_t max_entries)
    : opts_(opts), max_entries_(max_entries) {}

TrySolveResult NetworkSolveCache::solve(const std::vector<int>& w,
                                        int max_stage,
                                        double packet_error_rate) const {
  Key key{w, max_stage, packet_error_rate};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Solve outside the lock: concurrent misses on the same key may both
  // compute, but the solver is deterministic so they agree.
  TrySolveResult result =
      try_solve_network(w, max_stage, opts_, packet_error_rate);
  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.size() < max_entries_) {
    cache_.emplace(std::move(key), result);
  }
  return result;
}

std::size_t NetworkSolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::uint64_t NetworkSolveCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t NetworkSolveCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void NetworkSolveCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace smac::analytical
