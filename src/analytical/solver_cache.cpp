#include "analytical/solver_cache.hpp"

#include <algorithm>
#include <cstdlib>

namespace smac::analytical {

namespace {

/// SplitMix64-style avalanche: mixes each key component into the running
/// hash with full 64-bit diffusion (vector hashing via std::hash would
/// need a loop anyway; this keeps the combine explicit and portable).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

bool valid_solve_inputs(const std::vector<int>& w, int max_stage,
                        double per) {
  const bool windows_valid =
      std::all_of(w.begin(), w.end(), [](int wi) { return wi >= 1; });
  return !w.empty() && windows_valid && max_stage >= 0 && per >= 0.0 &&
         per < 1.0;
}

}  // namespace

std::size_t NetworkSolveCache::KeyHash::operator()(
    const Key& key) const noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  h = mix(h, static_cast<std::uint64_t>(key.window.size()));
  for (std::size_t c = 0; c < key.window.size(); ++c) {
    h = mix(h, static_cast<std::uint64_t>(key.window[c]));
    h = mix(h, static_cast<std::uint64_t>(key.multiplicity[c]));
  }
  h = mix(h, static_cast<std::uint64_t>(key.max_stage));
  std::uint64_t per_bits = 0;
  static_assert(sizeof(per_bits) == sizeof(key.packet_error_rate));
  __builtin_memcpy(&per_bits, &key.packet_error_rate, sizeof(per_bits));
  h = mix(h, per_bits);
  return static_cast<std::size_t>(h);
}

NetworkSolveCache::NetworkSolveCache(SolverOptions opts,
                                     std::size_t max_entries)
    : opts_(std::move(opts)), max_entries_(max_entries) {
  // Cached values must be pure functions of the key; a caller-supplied
  // warm start would make them depend on who populated the entry first.
  opts_.initial_tau.clear();
}

TrySolveResult NetworkSolveCache::solve(const std::vector<int>& w,
                                        int max_stage,
                                        double packet_error_rate) const {
  if (!valid_solve_inputs(w, max_stage, packet_error_rate)) {
    // Invalid inputs are not worth an entry: report the miss and return
    // the same kFailed/"invalid" result try_solve_network produces.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++misses_;
    }
    return try_solve_network(w, max_stage, opts_, packet_error_rate);
  }

  ClassProfile classes = classify_profile(w);
  Key key{classes.window, classes.multiplicity, max_stage,
          packet_error_rate};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      TrySolveResult out;
      out.state = expand_classes(it->second.state, classes);
      out.diagnostics = it->second.diagnostics;
      return out;
    }
  }
  // Solve outside the lock: concurrent misses on the same key may both
  // compute, but the class solve is deterministic (canonical start, no
  // warm hints) so they agree bitwise and insert order cannot matter.
  TrySolveResult collapsed =
      try_solve_classes(classes, max_stage, opts_, packet_error_rate);
  TrySolveResult out;
  out.state = expand_classes(collapsed.state, classes);
  out.diagnostics = collapsed.diagnostics;
  std::lock_guard<std::mutex> lock(mutex_);
  // Hit/miss is classified here, not at lookup: when two workers race on
  // the same fresh key, the loser observes the winner's entry and counts
  // a hit — exactly the serial-order tally, so the stats a bench prints
  // stay byte-identical at any --jobs (as long as max_entries isn't hit;
  // past capacity the insertion set becomes schedule-dependent).
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
  } else {
    ++misses_;
    if (cache_.size() < max_entries_) {
      cache_.emplace(std::move(key), std::move(collapsed));
    }
  }
  return out;
}

std::optional<TrySolveResult> NetworkSolveCache::lookup_classes(
    const ClassProfile& classes, int max_stage, double packet_error_rate,
    std::uint64_t requests) const {
  const Key key{classes.window, classes.multiplicity, max_stage,
                packet_error_rate};
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    hits_ += requests;
    return it->second;
  }
  return std::nullopt;
}

void NetworkSolveCache::adopt_classes(const ClassProfile& classes,
                                      int max_stage, double packet_error_rate,
                                      TrySolveResult collapsed,
                                      std::uint64_t requests) const {
  Key key{classes.window, classes.multiplicity, max_stage,
          packet_error_rate};
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    // A writer beat the caller to the key: same loser-observes-winner
    // accounting as solve().
    hits_ += requests;
    return;
  }
  ++misses_;
  hits_ += requests - 1;
  if (cache_.size() < max_entries_) {
    cache_.emplace(std::move(key), std::move(collapsed));
  }
}

void NetworkSolveCache::tally(std::uint64_t hits, std::uint64_t misses) const {
  std::lock_guard<std::mutex> lock(mutex_);
  hits_ += hits;
  misses_ += misses;
}

std::optional<std::vector<double>> NetworkSolveCache::neighbor_hint(
    const ClassProfile& classes, int max_stage,
    double packet_error_rate) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Key* best_key = nullptr;
  const TrySolveResult* best_value = nullptr;
  long long best_distance = 0;
  for (const auto& [key, value] : cache_) {
    if (key.max_stage != max_stage ||
        key.packet_error_rate != packet_error_rate ||
        key.multiplicity != classes.multiplicity ||
        !usable(value.diagnostics.status)) {
      continue;
    }
    long long distance = 0;
    for (std::size_t c = 0; c < key.window.size(); ++c) {
      distance += std::abs(static_cast<long long>(key.window[c]) -
                           static_cast<long long>(classes.window[c]));
    }
    if (distance == 0) continue;  // exact key: that is a hit, not a hint
    if (best_key == nullptr || distance < best_distance ||
        (distance == best_distance && key.window < best_key->window)) {
      best_key = &key;
      best_value = &value;
      best_distance = distance;
    }
  }
  if (best_value == nullptr) return std::nullopt;
  return best_value->state.tau;
}

std::size_t NetworkSolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::uint64_t NetworkSolveCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t NetworkSolveCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

SolveCacheStats NetworkSolveCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {cache_.size(), hits_, misses_};
}

void NetworkSolveCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace smac::analytical
