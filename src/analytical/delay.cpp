#include "analytical/delay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "analytical/throughput.hpp"
#include "analytical/utility.hpp"
#include "util/optimize.hpp"

namespace smac::analytical {

std::vector<DelayEstimate> access_delays(const NetworkState& state,
                                         const phy::Parameters& params,
                                         phy::AccessMode mode) {
  if (state.tau.empty() || state.tau.size() != state.p.size()) {
    throw std::invalid_argument("access_delays: malformed network state");
  }
  const ChannelMetrics metrics = channel_metrics(state.tau, params, mode);
  std::vector<DelayEstimate> out(state.tau.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double q = state.tau[i] * (1.0 - state.p[i]);
    if (q <= 0.0) {
      out[i].mean_us = std::numeric_limits<double>::infinity();
      out[i].stddev_us = std::numeric_limits<double>::infinity();
      continue;
    }
    out[i].mean_us = metrics.t_slot_us / q;
    out[i].stddev_us = metrics.t_slot_us * std::sqrt(1.0 - q) / q;
  }
  return out;
}

DelayEstimate homogeneous_access_delay(double w, int n,
                                       const phy::Parameters& params,
                                       phy::AccessMode mode) {
  const NetworkState state =
      solve_network_homogeneous(w, n, params.max_backoff_stage);
  return access_delays(state, params, mode).front();
}

double delay_aware_utility_rate(double w, int n, const phy::Parameters& params,
                                phy::AccessMode mode, double lambda) {
  if (lambda < 0.0) {
    throw std::invalid_argument("delay_aware_utility_rate: lambda < 0");
  }
  const double u = homogeneous_utility_rate(w, n, params, mode);
  if (lambda == 0.0) return u;
  return u - lambda * homogeneous_access_delay(w, n, params, mode).mean_us;
}

int delay_aware_efficient_cw(int n, const phy::Parameters& params,
                             phy::AccessMode mode, double lambda) {
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        return delay_aware_utility_rate(static_cast<double>(w), n, params,
                                        mode, lambda);
      },
      1, params.w_max);
  return static_cast<int>(r.x);
}

std::optional<int> delay_constrained_efficient_cw(
    int n, const phy::Parameters& params, phy::AccessMode mode,
    double max_delay_us) {
  if (!(max_delay_us > 0.0)) {
    throw std::invalid_argument(
        "delay_constrained_efficient_cw: non-positive bound");
  }
  auto delay_of = [&](int w) {
    return homogeneous_access_delay(w, n, params, mode).mean_us;
  };
  // Mean delay is U-shaped in w: collisions blow it up at tiny windows,
  // backoff slack grows it at large ones. The feasible set, if nonempty,
  // is an interval around the delay minimizer.
  const auto w_min_delay = util::ternary_int_max(
      [&](std::int64_t w) { return -delay_of(static_cast<int>(w)); }, 1,
      params.w_max);
  const int w_d = static_cast<int>(w_min_delay.x);
  if (delay_of(w_d) > max_delay_us) return std::nullopt;

  // Largest feasible window: delay increases right of w_d.
  int hi_feasible = w_d;
  {
    int lo = w_d;                 // feasible
    int hi = params.w_max;        // possibly infeasible
    if (delay_of(hi) <= max_delay_us) {
      hi_feasible = hi;
    } else {
      while (hi - lo > 1) {
        const int mid = lo + (hi - lo) / 2;
        (delay_of(mid) <= max_delay_us ? lo : hi) = mid;
      }
      hi_feasible = lo;
    }
  }
  // Smallest feasible window: delay decreases left of w_d.
  int lo_feasible = w_d;
  if (delay_of(1) <= max_delay_us) {
    lo_feasible = 1;
  } else {
    int lo = 1;      // infeasible
    int hi = w_d;    // feasible
    while (hi - lo > 1) {
      const int mid = lo + (hi - lo) / 2;
      (delay_of(mid) <= max_delay_us ? hi : lo) = mid;
    }
    lo_feasible = hi;
  }

  // Unimodal utility clamped to the feasible interval: the constrained
  // optimum is the unconstrained argmax projected onto [lo, hi]_feasible.
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        return homogeneous_utility_rate(static_cast<double>(w), n, params,
                                        mode);
      },
      1, params.w_max);
  return std::clamp(static_cast<int>(r.x), lo_feasible, hi_feasible);
}

}  // namespace smac::analytical
