// The paper's utility function and its continuous-τ analysis (§IV, §V).
//
//   u_i = τ_i·((1 − p_i)·g − e) / T_slot        [expected gain per µs]
//
// Stage utility is u_i·T; the repeated-game utility is the δ-discounted
// stage sum. For homogeneous profiles u is unimodal in the common window
// (Lemma 2/3) with maximizer τ_c* solving Q(τ_c) = 0:
//
//   Q(τ) = (1 − τ)^n σ − [nτ + (1 − τ)^n] T_c + T_c
//
// (derived under g ≫ e and T_s ≈ T_c; the paper's printed formula has a
// sign typo on the trailing T_c — the form above matches the paper's own
// boundary values Q(1) = −(n−1)·T_c < 0 and Q(0) > 0 and is verified
// against the exact discrete argmax in tests and benches).
#pragma once

#include <optional>
#include <vector>

#include "analytical/fixed_point_solver.hpp"
#include "phy/parameters.hpp"

namespace smac::analytical {

/// Per-node utility rates u_i (gain per µs) for a solved network state.
std::vector<double> utility_rates(const NetworkState& state,
                                  const phy::Parameters& params,
                                  phy::AccessMode mode);

/// u for one node of a homogeneous network: all n nodes on window w.
double homogeneous_utility_rate(double w, int n, const phy::Parameters& params,
                                phy::AccessMode mode);

/// Stage utility U_i^s = u_i·T (gain per stage; T in µs internally).
double homogeneous_stage_utility(double w, int n,
                                 const phy::Parameters& params,
                                 phy::AccessMode mode);

/// Discounted repeated-game utility of the stationary profile (w,…,w):
/// U = u·T / (1 − δ).
double homogeneous_discounted_utility(double w, int n,
                                      const phy::Parameters& params,
                                      phy::AccessMode mode);

/// Normalized global payoff U_global/C with C = g·T/(σ(1−δ)) — the y-axis
/// of the paper's Figures 2 and 3. Simplifies to n·u·σ/g.
double normalized_global_payoff(double w, int n, const phy::Parameters& params,
                                phy::AccessMode mode);

/// Lemma 3's first-order condition Q(τ) (sign-corrected, see file header).
double lemma3_q(double tau, int n, const phy::Parameters& params,
                phy::AccessMode mode);

/// Unique root τ_c* of Q on (0, 1): the continuous-τ utility maximizer.
/// Returns nullopt only if bracketing fails (should not happen for n >= 2).
std::optional<double> optimal_tau_continuous(int n,
                                             const phy::Parameters& params,
                                             phy::AccessMode mode);

/// Continuous window corresponding to τ_c* (via window_for_tau).
std::optional<double> optimal_window_continuous(int n,
                                                const phy::Parameters& params,
                                                phy::AccessMode mode);

}  // namespace smac::analytical
