// Channel-level metrics of Bianchi's model: slot composition, average slot
// length, normalized saturation throughput (paper §III).
#pragma once

#include <vector>

#include "analytical/fixed_point_solver.hpp"
#include "phy/parameters.hpp"

namespace smac::analytical {

/// Slot-composition probabilities and derived throughput for one solved
/// network state.
struct ChannelMetrics {
  double p_tr = 0.0;     ///< P(at least one transmission in a slot)
  double p_s = 0.0;      ///< P(success | at least one transmission)
  double t_slot_us = 0.0;  ///< E[slot length] = (1−Ptr)σ + PtrPsTs + Ptr(1−Ps)Tc
  double throughput = 0.0; ///< S: fraction of time carrying payload
  std::vector<double> per_node_success;    ///< P_i = τ_i·Π_{j≠i}(1−τ_j)
  std::vector<double> per_node_throughput; ///< S_i = P_i·E[P]/T_slot
};

/// Computes the metrics from per-node transmission probabilities.
/// Throws std::invalid_argument on an empty τ vector.
ChannelMetrics channel_metrics(const std::vector<double>& tau,
                               const phy::Parameters& params,
                               phy::AccessMode mode);

/// Convenience: solve + measure for a homogeneous network of n nodes on
/// window w.
ChannelMetrics homogeneous_channel_metrics(double w, int n,
                                           const phy::Parameters& params,
                                           phy::AccessMode mode);

}  // namespace smac::analytical
