// Medium-access delay and delay-aware equilibrium (paper §VIII).
//
// The paper's discussion section concedes that the generic utility ignores
// delay, so the NE window "may seem too long in some cases", and suggests
// richer utilities as future work. This module supplies the missing piece:
// the mean (and standard deviation of the) access delay implied by a solved
// network state, a delay-penalized utility, and the delay-constrained
// efficient window.
//
// Per-slot success probability of node i is q_i = τ_i(1 − p_i); successes
// are approximately geometric over channel slots (the same mean-field
// assumption Bianchi's model itself makes), so
//
//   E[D_i]  = T_slot / q_i          (mean µs between own deliveries)
//   SD[D_i] = T_slot·√(1 − q_i)/q_i
#pragma once

#include <optional>
#include <vector>

#include "analytical/fixed_point_solver.hpp"
#include "phy/parameters.hpp"

namespace smac::analytical {

struct DelayEstimate {
  double mean_us = 0.0;
  double stddev_us = 0.0;
};

/// Per-node access delays for a solved state.
std::vector<DelayEstimate> access_delays(const NetworkState& state,
                                         const phy::Parameters& params,
                                         phy::AccessMode mode);

/// Delay of one node in a homogeneous network of n nodes on window w.
DelayEstimate homogeneous_access_delay(double w, int n,
                                       const phy::Parameters& params,
                                       phy::AccessMode mode);

/// Delay-penalized utility rate: u(w) − λ·E[D(w)], with λ in
/// (gain per µs) per µs of delay. λ = 0 recovers the paper's utility;
/// larger λ prices responsiveness and pulls the optimum toward smaller
/// windows.
double delay_aware_utility_rate(double w, int n, const phy::Parameters& params,
                                phy::AccessMode mode, double lambda);

/// Argmax over integer windows of the delay-penalized utility.
int delay_aware_efficient_cw(int n, const phy::Parameters& params,
                             phy::AccessMode mode, double lambda);

/// Largest window whose mean access delay stays within `max_delay_us`,
/// intersected with the unconstrained efficient window: the NE a
/// delay-bounded application would operate (min of the two). Returns
/// nullopt when even w = 1 violates the delay bound.
std::optional<int> delay_constrained_efficient_cw(
    int n, const phy::Parameters& params, phy::AccessMode mode,
    double max_delay_us);

}  // namespace smac::analytical
