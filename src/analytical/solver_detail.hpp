// Shared arithmetic of the class-space solver kernels (internal).
//
// The sequential ladder (fixed_point_solver.cpp) and the lockstep batch
// kernel (batch_solver.cpp) must produce bitwise-identical iterates: both
// therefore evaluate the class-collision map through these inline helpers,
// so there is exactly one operation order for p_c and for the sanitation
// of a finished iterate. Nothing here is part of the public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace smac::analytical::detail {

/// x^e for integer e >= 0 by binary exponentiation: O(log e) multiplies
/// with a deterministic operation order (std::pow(double, double) would
/// work but routes through exp/log on some libms).
inline double ipow(double x, int e) {
  double result = 1.0;
  while (e > 0) {
    if (e & 1) result *= x;
    x *= x;
    e >>= 1;
  }
  return result;
}

/// Class-space collision probabilities,
///   p_c = 1 − (1 − τ_c)^(m_c − 1) · Π_{c'≠c} (1 − τ_{c'})^{m_{c'}},
/// via prefix/suffix products over the per-class factors
/// g_c = (1 − τ_c)^{m_c}: O(k + Σ log m_c), no division (exact at τ → 1).
/// Raw-pointer form so the batch kernel can run it over arena segments;
/// `prefix`/`suffix` are caller scratch of size k + 1.
inline void class_collision_probabilities_into(const double* tau,
                                               const int* multiplicity,
                                               std::size_t k, double* prefix,
                                               double* suffix, double* p) {
  prefix[0] = 1.0;
  suffix[k] = 1.0;
  for (std::size_t c = 0; c < k; ++c) {
    prefix[c + 1] = prefix[c] * ipow(1.0 - tau[c], multiplicity[c]);
  }
  for (std::size_t c = k; c-- > 0;) {
    suffix[c] = suffix[c + 1] * ipow(1.0 - tau[c], multiplicity[c]);
  }
  for (std::size_t c = 0; c < k; ++c) {
    const double own = ipow(1.0 - tau[c], multiplicity[c] - 1);
    p[c] = 1.0 - own * prefix[c] * suffix[c + 1];
    p[c] = std::clamp(p[c], 0.0, 1.0);
  }
}

/// Vector convenience wrapper over class_collision_probabilities_into.
inline std::vector<double> class_collision_probabilities(
    const std::vector<double>& tau, const std::vector<int>& multiplicity) {
  const std::size_t k = tau.size();
  std::vector<double> prefix(k + 1);
  std::vector<double> suffix(k + 1);
  std::vector<double> p(k);
  class_collision_probabilities_into(tau.data(), multiplicity.data(), k,
                                     prefix.data(), suffix.data(), p.data());
  return p;
}

/// Clamps every entry into [0, 1] and replaces non-finite values by 0, so
/// a failed solve can never leak NaN/Inf into utilities downstream.
inline void sanitize_probabilities(std::vector<double>& xs) {
  for (double& x : xs) {
    if (!std::isfinite(x)) x = 0.0;
    x = std::clamp(x, 0.0, 1.0);
  }
}

}  // namespace smac::analytical::detail
