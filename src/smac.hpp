// Umbrella header: the complete public API of the selfish-mac library.
//
// Prefer the specific headers in library code; this is a convenience for
// quick experiments and downstream prototypes:
//
//   #include "smac.hpp"
//   auto w = smac::game::EquilibriumFinder(
//       smac::game::StageGame(smac::phy::Parameters::paper(),
//                             smac::phy::AccessMode::kBasic), 10)
//       .efficient_cw();
#pragma once

// util — numerics, RNG, statistics, I/O helpers
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/fixed_point.hpp"
#include "util/logging.hpp"
#include "util/optimize.hpp"
#include "util/rng.hpp"
#include "util/root_finding.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// parallel — thread pool + deterministic Monte-Carlo replication
#include "parallel/replication.hpp"
#include "parallel/thread_pool.hpp"

// phy — parameters, timings, energy
#include "phy/energy.hpp"
#include "phy/parameters.hpp"

// analytical — the extended Bianchi model
#include "analytical/backoff_chain.hpp"
#include "analytical/delay.hpp"
#include "analytical/fixed_point_solver.hpp"
#include "analytical/solver_cache.hpp"
#include "analytical/throughput.hpp"
#include "analytical/utility.hpp"

// fault — deterministic fault injection + degradation accounting
#include "fault/degradation.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"

// game — the non-cooperative MAC game
#include "game/asymmetric.hpp"
#include "game/deviation.hpp"
#include "game/equilibrium.hpp"
#include "game/rate_game.hpp"
#include "game/repeated_game.hpp"
#include "game/stage_game.hpp"
#include "game/strategies.hpp"
#include "game/tournament.hpp"

// sim — slot-level single-hop simulator and runtimes
#include "sim/adaptive_runtime.hpp"
#include "sim/cw_estimator.hpp"
#include "sim/dcf_node.hpp"
#include "sim/misbehavior_detector.hpp"
#include "sim/search_protocol.hpp"
#include "sim/simulator.hpp"

// multihop — spatial simulator, mobility, local games
#include "multihop/adaptive.hpp"
#include "multihop/geometry.hpp"
#include "multihop/local_game.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"
#include "multihop/topology.hpp"
