// Ablation — relaxing the saturation assumption.
//
// The paper's model assumes every node always has a packet ready. This
// harness measures how the selfish-MAC conclusions depend on that: with
// Poisson sources below saturation, the channel has slack, aggression
// stops paying (an undercutter gains little because success was already
// cheap), and the efficient-NE window matters much less. Near/above the
// saturation load the paper's regime re-emerges.
#include <cstdio>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Saturation-assumption ablation (Poisson sources)",
      "paper §III assumption ('the network is saturated')",
      "Basic access, n = 10, W from the saturated-game NE = W_c*.");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const int n = 10;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  // Saturation throughput bound per node, packets/s: channel carries
  // roughly one 8980 µs exchange at ~0.82 efficiency → ~11 pkt/s total.
  std::printf("W_c* (saturated game) = %d\n\n", w_star);

  util::TextTable table({"arrival (pkt/s/node)", "offered load",
                         "throughput", "mean backlog", "collision rate",
                         "undercutter gain %"});
  for (double rate : {2.0, 5.0, 8.0, 11.0, 20.0}) {
    const double offered = n * rate * params.payload_us() * 1e-6;

    auto run = [&](int w0) {
      sim::SimConfig config;
      config.arrival_rate_pps = rate;
      config.seed = 42;
      std::vector<int> profile(n, w_star);
      profile[0] = w0;
      sim::Simulator simulator(config, profile);
      return simulator.run_for(80.0 * 1e6);
    };
    const auto honest = run(w_star);
    const auto undercut = run(std::max(1, w_star / 8));

    double backlog = 0.0;
    for (double b : honest.mean_backlog) backlog += b;
    const double coll_rate =
        static_cast<double>(honest.collision_slots) /
        static_cast<double>(honest.success_slots + honest.collision_slots + 1);
    const double gain =
        honest.payoff_rate[0] != 0.0
            ? (undercut.payoff_rate[0] - honest.payoff_rate[0]) /
                  std::abs(honest.payoff_rate[0]) * 100.0
            : 0.0;
    table.add_row({util::fmt_double(rate, 1), util::fmt_double(offered, 2),
                   util::fmt_double(honest.throughput, 3),
                   util::fmt_double(backlog / n, 2),
                   util::fmt_double(coll_rate, 3),
                   util::fmt_double(gain, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: below saturation (offered < ~0.8) throughput tracks the\n"
      "offered load, queues and collisions stay tiny, and undercutting the\n"
      "window buys almost nothing — selfishness is moot with slack. At and\n"
      "above saturation the paper's regime returns: queues build and the\n"
      "undercutter's gain turns decisively positive.\n");
  return 0;
}
