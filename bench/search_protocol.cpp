// §V.C — the distributed search algorithm for the efficient NE.
//
// The paper proposes the Start-Search / Ready / broadcast protocol and
// argues it reaches W_c* without knowing n. This harness measures, for
// several network sizes and starting points, where the search lands, how
// many Ready rounds it takes, how much channel time it consumes, and what
// fraction of the optimal payoff the found window earns.
#include <cstdio>
#include <vector>

#include "analytical/utility.hpp"
#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "sim/search_protocol.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Search protocol convergence to the efficient NE",
      "paper §V.C (algorithm) + §VII.A robustness remark",
      "RTS/CTS access. payoff%% = model utility at the found window over\n"
      "the model utility at W_c*.");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kRtsCts);

  util::TextTable table({"n", "W_c*", "start", "found", "steps",
                         "left-search", "channel time (s)", "payoff%"});
  for (int n : {5, 10, 20}) {
    const game::EquilibriumFinder finder(game, n);
    const int w_star = finder.efficient_cw();
    const double u_star = game.homogeneous_utility_rate(w_star, n);

    for (int start : {std::max(2, w_star / 4), w_star, w_star * 4}) {
      sim::SimConfig config;
      config.mode = phy::AccessMode::kRtsCts;
      config.seed = 0x5ea4c4 + static_cast<std::uint64_t>(n * 1000 + start);
      sim::Simulator simulator(config, std::vector<int>(n, start));

      sim::SearchConfig search;
      search.w_start = start;
      search.settle_us = 1e5;
      search.measure_us = 8e6;
      search.patience = 3;
      search.improvement_epsilon = 0.005;
      const sim::SearchResult r = sim::run_search(simulator, 0, search);

      const double u_found = game.homogeneous_utility_rate(r.w_found, n);
      table.add_row({std::to_string(n), std::to_string(w_star),
                     std::to_string(start), std::to_string(r.w_found),
                     std::to_string(r.steps),
                     r.used_left_search ? "yes" : "no",
                     util::fmt_double(r.elapsed_us / 1e6, 1),
                     util::fmt_double(u_found / u_star * 100.0, 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: payoff%% >= ~95 everywhere — the found window sits on\n"
      "the W_c* plateau even when the exact argmax is missed (the paper's\n"
      "robustness observation makes this the operationally relevant metric).\n");
  return 0;
}
