// Multi-hop TFT dynamics under mobility (paper §VI convergence argument).
//
// §VI argues windows converge to the global minimum "after sufficiently
// long time as long as the network is not partitioned", with contagion
// spreading one hop per stage. This harness plays the dynamics on the
// spatial simulator and measures: stages to convergence vs topology
// diameter (static), and the effect of mobility speed — movement both
// carries minima across partitions and keeps re-wiring who observes whom.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "game/stage_game.hpp"
#include "multihop/adaptive.hpp"
#include "multihop/local_game.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Multi-hop TFT dynamics: convergence vs diameter and mobility",
      "paper §VI (contagion of the minimum window)",
      "RTS/CTS, local-NE seeds, slot-level spatial simulator.");

  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);

  // 1. Static: stages-to-stable tracks the hop distance from the minimum.
  util::TextTable static_table({"chain length", "diameter", "stable from",
                                "W_m"});
  for (int n : {4, 8, 12, 16}) {
    std::vector<multihop::Vec2> pos;
    for (int i = 0; i < n; ++i) pos.push_back({i * 200.0, 0.0});
    const multihop::Topology topo(pos, 250.0);
    std::vector<int> seed(static_cast<std::size_t>(n), 60);
    seed[0] = 15;  // minimum at one end
    multihop::MultihopConfig config;
    config.seed = 7;
    multihop::MultihopSimulator sim(config, topo, seed);
    multihop::MultihopTftConfig tft;
    tft.slots_per_stage = 8000;
    tft.stages = n + 2;
    const auto result = multihop::play_multihop_tft(sim, nullptr, tft);
    static_table.add_row({std::to_string(n),
                          std::to_string(topo.diameter()),
                          std::to_string(result.stable_from),
                          std::to_string(result.converged_cw.value_or(-1))});
  }
  std::printf("%s\n", static_table.to_string().c_str());

  // 2. Mobile: 30 nodes, sparse (sometimes partitioned) field; how fast
  //    does the global minimum reach everyone as speed grows?
  util::TextTable mobile_table({"speed (m/s)", "stages run",
                                "uniform at end", "final min W",
                                "final max W"});
  for (double v_max : {0.0, 2.0, 8.0, 20.0}) {
    multihop::MobilityConfig mob;
    mob.width_m = 1200.0;
    mob.height_m = 1200.0;
    mob.v_min_mps = 0.0;
    mob.v_max_mps = std::max(v_max, 1e-9);
    mob.seed = 11;
    multihop::RandomWaypointModel mobility(mob, 30);

    multihop::MultihopConfig config;
    config.seed = 13;
    const multihop::Topology topo0(mobility.positions(), config.range_m);
    const auto seeds = multihop::local_efficient_cw(topo0, game);
    multihop::MultihopSimulator sim(config, topo0, seeds);

    multihop::MultihopTftConfig tft;
    tft.slots_per_stage = 6000;
    tft.stages = 40;
    tft.mobility_dt_s = v_max > 0.0 ? 20.0 : 0.0;
    const auto result = multihop::play_multihop_tft(sim, &mobility, tft);

    const auto& last = result.stages.back().cw;
    mobile_table.add_row(
        {util::fmt_double(v_max, 1), std::to_string(result.stages.size()),
         result.converged_cw ? "yes" : "no",
         std::to_string(*std::min_element(last.begin(), last.end())),
         std::to_string(*std::max_element(last.begin(), last.end()))});
  }
  std::printf("%s\n", mobile_table.to_string().c_str());
  std::printf(
      "Expectation: static chains stabilize in exactly diameter stages (one\n"
      "hop of contagion per stage); on the sparse mobile field a static\n"
      "snapshot can stay non-uniform (partitions keep their own minima)\n"
      "while increasing speed mixes partitions and drives the profile to\n"
      "the global minimum.\n");
  return 0;
}
