// Multi-hop TFT dynamics under mobility (paper §VI convergence argument).
//
// §VI argues windows converge to the global minimum "after sufficiently
// long time as long as the network is not partitioned", with contagion
// spreading one hop per stage. This harness plays the dynamics on the
// spatial simulator and measures: stages to convergence vs topology
// diameter (static), and the effect of mobility speed — movement both
// carries minima across partitions and keeps re-wiring who observes whom.
// Sweep points are independent experiments and fan across --jobs; each
// keeps its own fixed seed, so the tables are identical at any job count.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "game/stage_game.hpp"
#include "multihop/adaptive.hpp"
#include "multihop/local_game.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace smac;
using smac::bench::sweep;

int main(int argc, char** argv) {
  bench::print_header(
      "Multi-hop TFT dynamics: convergence vs diameter and mobility",
      "paper §VI (contagion of the minimum window)",
      "RTS/CTS, local-NE seeds, slot-level spatial simulator.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const game::StageGame game(phy::Parameters::paper(),
                             phy::AccessMode::kRtsCts);

  // 1. Static: stages-to-stable tracks the hop distance from the minimum.
  const std::vector<int> chain_lengths{4, 8, 12, 16};
  std::vector<std::vector<std::string>> static_rows(chain_lengths.size());
  sweep(chain_lengths.size(), jobs, [&](std::size_t idx) {
    const int n = chain_lengths[idx];
    std::vector<multihop::Vec2> pos;
    for (int i = 0; i < n; ++i) pos.push_back({i * 200.0, 0.0});
    const multihop::Topology topo(pos, 250.0);
    std::vector<int> seed(static_cast<std::size_t>(n), 60);
    seed[0] = 15;  // minimum at one end
    multihop::MultihopConfig config;
    config.seed = 7;
    multihop::MultihopSimulator sim(config, topo, seed);
    multihop::MultihopTftConfig tft;
    tft.slots_per_stage = 8000;
    tft.stages = n + 2;
    const auto result = multihop::play_multihop_tft(sim, nullptr, tft);
    static_rows[idx] = {std::to_string(n), std::to_string(topo.diameter()),
                        std::to_string(result.stable_from),
                        std::to_string(result.converged_cw.value_or(-1))};
  });
  util::TextTable static_table({"chain length", "diameter", "stable from",
                                "W_m"});
  for (auto& row : static_rows) static_table.add_row(std::move(row));
  std::printf("%s\n", static_table.to_string().c_str());

  // 2. Mobile: 30 nodes, sparse (sometimes partitioned) field; how fast
  //    does the global minimum reach everyone as speed grows?
  const std::vector<double> speeds{0.0, 2.0, 8.0, 20.0};
  std::vector<std::vector<std::string>> mobile_rows(speeds.size());
  sweep(speeds.size(), jobs, [&](std::size_t idx) {
    const double v_max = speeds[idx];
    multihop::MobilityConfig mob;
    mob.width_m = 1200.0;
    mob.height_m = 1200.0;
    mob.v_min_mps = 0.0;
    mob.v_max_mps = std::max(v_max, 1e-9);
    mob.seed = 11;
    multihop::RandomWaypointModel mobility(mob, 30);

    multihop::MultihopConfig config;
    config.seed = 13;
    const multihop::Topology topo0(mobility.positions(), config.range_m);
    const auto seeds = multihop::local_efficient_cw(topo0, game);
    multihop::MultihopSimulator sim(config, topo0, seeds);

    multihop::MultihopTftConfig tft;
    tft.slots_per_stage = 6000;
    tft.stages = 40;
    tft.mobility_dt_s = v_max > 0.0 ? 20.0 : 0.0;
    const auto result = multihop::play_multihop_tft(sim, &mobility, tft);

    const auto& last = result.stages.back().cw;
    mobile_rows[idx] = {
        util::fmt_double(v_max, 1), std::to_string(result.stages.size()),
        result.converged_cw ? "yes" : "no",
        std::to_string(*std::min_element(last.begin(), last.end())),
        std::to_string(*std::max_element(last.begin(), last.end()))};
  });
  util::TextTable mobile_table({"speed (m/s)", "stages run",
                                "uniform at end", "final min W",
                                "final max W"});
  for (auto& row : mobile_rows) mobile_table.add_row(std::move(row));
  std::printf("%s\n", mobile_table.to_string().c_str());

  // 3. Replicated batch: measurement noise of one spatial configuration
  //    (12-node chain at the converged window), seed-streams fanned
  //    across jobs and streaming-reduced. Default: fixed 8 replications;
  //    --ci-target X replicates (up to --max-reps, batches of 4) until
  //    the success-fraction CI half-width falls below X.
  {
    std::vector<multihop::Vec2> pos;
    for (int i = 0; i < 12; ++i) pos.push_back({i * 200.0, 0.0});
    const multihop::Topology topo(pos, 250.0);
    multihop::MultihopConfig config;
    config.seed = 29;
    const parallel::StoppingRule rule = bench::resolve_stopping(
        bench::stopping_option(argc, argv), "success fraction", 8, 4);
    const auto batch = multihop::run_replicated(
        config, topo, std::vector<int>(12, 15), 5000, rule, jobs);
    std::printf("replicated 12-chain at W = 15:\n%s\n%s\n",
                batch.stopping.summary().c_str(),
                util::format_metric_summaries(batch.metrics).c_str());
  }
  std::printf(
      "Expectation: static chains stabilize in exactly diameter stages (one\n"
      "hop of contagion per stage); on the sparse mobile field a static\n"
      "snapshot can stay non-uniform (partitions keep their own minima)\n"
      "while increasing speed mixes partitions and drives the profile to\n"
      "the global minimum. The replication CI quantifies how much of any\n"
      "single-run payoff figure is seed noise.\n");
  return 0;
}
