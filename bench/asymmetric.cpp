// Extension — asymmetric player classes (relaxing g_i = g, e_i = e).
//
// The paper homogenizes utility coefficients "to simplify the problem".
// This harness plays the game with two classes (energy-cheap vs
// energy-dear) and reports each class's preferred common window, the TFT
// outcome W_m = min preference, the welfare-maximizing compromise, and
// who pays for the disagreement — the single-hop analogue of Theorem 3's
// quasi-optimality tension.
#include <cstdio>

#include "bench_common.hpp"
#include "game/asymmetric.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Asymmetric classes: energy-cheap vs energy-dear players",
      "paper §IV simplification (g_i = g, e_i = e) relaxed",
      "Basic access, 3 + 3 players, g = 1 for both classes.");

  util::TextTable table({"e_dear", "W pref (cheap)", "W pref (dear)",
                         "W_m (TFT)", "W welfare", "dear loss at W_m %",
                         "cheap loss at W welfare %"});
  for (double e_dear : {0.01, 0.05, 0.15, 0.35, 0.6}) {
    const game::AsymmetricGame game(phy::Parameters::paper(),
                                    phy::AccessMode::kBasic,
                                    {{1.0, 0.01, 3}, {1.0, e_dear, 3}});
    const int w_cheap = game.preferred_common_window(0);
    const int w_dear = game.preferred_common_window(1);
    const int w_m = game.tft_outcome_window();
    const int w_welfare = game.welfare_maximizing_common_window();
    const double dear_loss =
        1.0 - game.common_window_utility(1, w_m) /
                  game.common_window_utility(1, w_dear);
    const double cheap_loss =
        1.0 - game.common_window_utility(0, w_welfare) /
                  game.common_window_utility(0, w_cheap);
    table.add_row({util::fmt_double(e_dear, 2), std::to_string(w_cheap),
                   std::to_string(w_dear), std::to_string(w_m),
                   std::to_string(w_welfare),
                   util::fmt_percent(dear_loss, 2),
                   util::fmt_percent(cheap_loss, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Myopic collapse still happens with mixed classes.
  const game::AsymmetricGame game(phy::Parameters::paper(),
                                  phy::AccessMode::kBasic,
                                  {{1.0, 0.01, 3}, {1.0, 0.35, 3}});
  const auto br = game.iterated_best_response(std::vector<int>(6, 150), 40);
  std::printf("myopic best-response fixed point: [");
  for (std::size_t i = 0; i < br.profile.size(); ++i) {
    std::printf(i ? " %d" : "%d", br.profile[i]);
  }
  std::printf("] (converged: %s, rounds: %d)\n\n",
              br.converged ? "yes" : "no", br.rounds);
  std::printf(
      "Expectation: the dear class prefers larger windows (each attempt\n"
      "costs more), the gap widening with e_dear; TFT lands on the cheap\n"
      "class's preference and the dear class eats the loss; the welfare\n"
      "window sits between the two. Myopic play ends in *monopolization*,\n"
      "not symmetric collapse: the cheap player dives to W = 1, which\n"
      "drives the dear players' expected reward (1-p)g below their cost e,\n"
      "and their best response is to withdraw to W_max — the selfish\n"
      "stage game prices the energy-constrained class off the channel.\n");
  return 0;
}
