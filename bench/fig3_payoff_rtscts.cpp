// Figure 3 — normalized global payoff U/C versus common CW, RTS/CTS.
//
// Same axes as Figure 2 but under the RTS/CTS handshake. The paper uses
// this figure to make two points: the efficient NE still maximizes the
// global payoff, and the curve is even flatter than in the basic case —
// near-independence of the payoff from the CW, which §VI.A leans on for
// the multi-hop p_hn approximation.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

std::vector<int> log_grid(int lo, int hi, int points) {
  std::vector<int> grid;
  const double ratio =
      std::pow(static_cast<double>(hi) / lo, 1.0 / (points - 1));
  double w = lo;
  for (int i = 0; i < points; ++i) {
    const int wi = std::max(lo, std::min(hi, static_cast<int>(w + 0.5)));
    if (grid.empty() || grid.back() != wi) grid.push_back(wi);
    w *= ratio;
  }
  return grid;
}

std::string ascii_bar(double value, double peak, int width = 48) {
  const int len =
      value <= 0.0 ? 0 : static_cast<int>(value / peak * width + 0.5);
  return std::string(static_cast<std::size_t>(std::max(0, len)), '#');
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Figure 3: normalized global payoff U/C vs common CW — RTS/CTS",
      "paper Figure 3",
      "Series for n = 5/20/50. Flatter than Figure 2: collisions cost only\n"
      "an RTS, so over-aggressive windows are barely punished.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kRtsCts);
  const game::StageGame basic_game(params, phy::AccessMode::kBasic);
  const std::vector<int> ns{5, 20, 50};

  // Each n-series (including its basic-access flatness counterpart) is an
  // independent analytical computation; fan across --jobs, then emit CSV
  // and tables in series order — byte-identical for any jobs value.
  struct Series {
    int w_star = 0;
    double peak_payoff = 0.0;
    std::vector<int> grid;
    std::vector<double> payoff;
    double peak = 0.0;
    double keep_rts = 0.0;
    double keep_basic = 0.0;
  };
  std::vector<Series> series(ns.size());
  bench::sweep(ns.size(), jobs, [&](std::size_t idx) {
    const int n = ns[idx];
    Series& s = series[idx];
    const game::EquilibriumFinder finder(game, n);
    s.w_star = finder.efficient_cw();
    s.peak_payoff = game.normalized_global_payoff(s.w_star, n);
    s.grid = log_grid(2, 16 * s.w_star, 28);
    for (int w : s.grid) {
      const double v = game.normalized_global_payoff(w, n);
      s.payoff.push_back(v);
      s.peak = std::max(s.peak, v);
    }
    // Flatness comparison against Figure 2 at the same n: payoff retained
    // when operating at 4× the efficient window.
    s.keep_rts = game.normalized_global_payoff(4 * s.w_star, n) /
                 game.normalized_global_payoff(s.w_star, n);
    const game::EquilibriumFinder basic_finder(basic_game, n);
    const int wb = basic_finder.efficient_cw();
    s.keep_basic = basic_game.normalized_global_payoff(4 * wb, n) /
                   basic_game.normalized_global_payoff(wb, n);
  });

  util::CsvWriter csv("fig3_payoff_rtscts.csv", {"n", "w", "u_over_c"});
  for (std::size_t idx = 0; idx < ns.size(); ++idx) {
    const int n = ns[idx];
    const Series& s = series[idx];
    for (std::size_t i = 0; i < s.grid.size(); ++i) {
      csv.add_row({static_cast<double>(n), static_cast<double>(s.grid[i]),
                   s.payoff[i]});
    }
    std::printf("--- n = %d (W_c* = %d, U/C at peak = %.4f) ---\n", n,
                s.w_star, s.peak_payoff);
    util::TextTable table({"W", "U/C", "profile"});
    for (std::size_t i = 0; i < s.grid.size(); ++i) {
      table.add_row({std::to_string(s.grid[i]),
                     util::fmt_double(s.payoff[i], 4),
                     ascii_bar(s.payoff[i], s.peak)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("payoff retained at 4x W_c*: rts-cts %.1f%% vs basic %.1f%%\n\n",
                s.keep_rts * 100.0, s.keep_basic * 100.0);
  }
  std::printf("Series written to fig3_payoff_rtscts.csv\n");
  std::printf(
      "Expectation: peaks at Table III windows; RTS/CTS retains more payoff\n"
      "away from the peak than basic access at every n.\n");
  return 0;
}
