// Figure 3 — normalized global payoff U/C versus common CW, RTS/CTS.
//
// Same axes as Figure 2 but under the RTS/CTS handshake. The paper uses
// this figure to make two points: the efficient NE still maximizes the
// global payoff, and the curve is even flatter than in the basic case —
// near-independence of the payoff from the CW, which §VI.A leans on for
// the multi-hop p_hn approximation.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

std::vector<int> log_grid(int lo, int hi, int points) {
  std::vector<int> grid;
  const double ratio =
      std::pow(static_cast<double>(hi) / lo, 1.0 / (points - 1));
  double w = lo;
  for (int i = 0; i < points; ++i) {
    const int wi = std::max(lo, std::min(hi, static_cast<int>(w + 0.5)));
    if (grid.empty() || grid.back() != wi) grid.push_back(wi);
    w *= ratio;
  }
  return grid;
}

std::string ascii_bar(double value, double peak, int width = 48) {
  const int len =
      value <= 0.0 ? 0 : static_cast<int>(value / peak * width + 0.5);
  return std::string(static_cast<std::size_t>(std::max(0, len)), '#');
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3: normalized global payoff U/C vs common CW — RTS/CTS",
      "paper Figure 3",
      "Series for n = 5/20/50. Flatter than Figure 2: collisions cost only\n"
      "an RTS, so over-aggressive windows are barely punished.");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kRtsCts);
  const game::StageGame basic_game(params, phy::AccessMode::kBasic);
  const std::vector<int> ns{5, 20, 50};

  util::CsvWriter csv("fig3_payoff_rtscts.csv", {"n", "w", "u_over_c"});
  for (int n : ns) {
    const game::EquilibriumFinder finder(game, n);
    const int w_star = finder.efficient_cw();
    const std::vector<int> grid = log_grid(2, 16 * w_star, 28);
    std::vector<double> payoff;
    double peak = 0.0;
    for (int w : grid) {
      const double v = game.normalized_global_payoff(w, n);
      payoff.push_back(v);
      peak = std::max(peak, v);
      csv.add_row({static_cast<double>(n), static_cast<double>(w), v});
    }

    std::printf("--- n = %d (W_c* = %d, U/C at peak = %.4f) ---\n", n, w_star,
                game.normalized_global_payoff(w_star, n));
    util::TextTable table({"W", "U/C", "profile"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.add_row({std::to_string(grid[i]), util::fmt_double(payoff[i], 4),
                     ascii_bar(payoff[i], peak)});
    }
    std::printf("%s\n", table.to_string().c_str());

    // Flatness comparison against Figure 2 at the same n: payoff retained
    // when operating at 4× the efficient window.
    const int w4 = 4 * w_star;
    const double keep_rts =
        game.normalized_global_payoff(w4, n) /
        game.normalized_global_payoff(w_star, n);
    const game::EquilibriumFinder basic_finder(basic_game, n);
    const int wb = basic_finder.efficient_cw();
    const double keep_basic =
        basic_game.normalized_global_payoff(4 * wb, n) /
        basic_game.normalized_global_payoff(wb, n);
    std::printf("payoff retained at 4x W_c*: rts-cts %.1f%% vs basic %.1f%%\n\n",
                keep_rts * 100.0, keep_basic * 100.0);
  }
  std::printf("Series written to fig3_payoff_rtscts.csv\n");
  std::printf(
      "Expectation: peaks at Table III windows; RTS/CTS retains more payoff\n"
      "away from the peak than basic access at every n.\n");
  return 0;
}
