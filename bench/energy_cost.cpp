// Ablation — grounding the game's cost parameter e in radio energy.
//
// The paper treats e as an abstract transmission cost ("nodes are
// energy-constrained"). This harness maps e to physics: per-event
// energies from a WaveLAN-class power profile, the long-run power draw
// each node pays at the NE, and how the efficient NE moves when e is
// derived from an actual energy price instead of the fixed 0.01.
#include <cstdio>

#include "analytical/fixed_point_solver.hpp"
#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "phy/energy.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Energy grounding of the cost parameter e",
      "paper §IV ('they are also energy-constrained'; e = 0.01 in Table I)",
      "WaveLAN-class power profile: tx 1900 mW, rx/idle 1340 mW.");

  const phy::Parameters params = phy::Parameters::paper();
  const phy::PowerProfile power;

  // 1. Event energies per access mode.
  util::TextTable events({"mode", "success (mJ)", "collision (mJ)",
                          "collision/success"});
  for (auto mode : {phy::AccessMode::kBasic, phy::AccessMode::kRtsCts}) {
    const double s = successful_exchange_energy(params, mode, power).total_mj();
    const double c = collided_attempt_energy(params, mode, power).total_mj();
    events.add_row({to_string(mode), util::fmt_double(s, 2),
                    util::fmt_double(c, 2), util::fmt_double(c / s, 3)});
  }
  std::printf("%s\n", events.to_string().c_str());

  // 2. Power draw at the efficient NE vs at an undercut profile.
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const int n = 10;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  util::TextTable draw({"profile", "draw node0 (mW)", "draw others (mW)"});
  for (int w0 : {w_star, w_star / 8}) {
    std::vector<int> profile(n, w_star);
    profile[0] = w0;
    const auto state = analytical::solve_network(profile, params.max_backoff_stage);
    const auto mw = phy::node_power_draw_mw(state.tau, state.p, params,
                                            phy::AccessMode::kBasic, power);
    draw.add_row({w0 == w_star ? "all at W_c*" : "node0 undercuts to W_c*/8",
                  util::fmt_double(mw[0], 0), util::fmt_double(mw[1], 0)});
  }
  std::printf("%s\n", draw.to_string().c_str());

  // 3. NE sensitivity to an energy-derived e.
  util::TextTable ne({"energy price (gain/mJ)", "equivalent e",
                      "W_c* (n=10)"});
  for (double price : {0.0, 3e-4, 6e-4, 3e-3, 1.5e-2}) {
    const double e = phy::equivalent_transmission_cost(
        params, phy::AccessMode::kBasic, power, 0.1, price);
    phy::Parameters priced = params;
    priced.cost = e;
    const game::StageGame priced_game(priced, phy::AccessMode::kBasic);
    ne.add_row({util::fmt_double(price, 4), util::fmt_double(e, 4),
                std::to_string(
                    game::EquilibriumFinder(priced_game, n).efficient_cw())});
  }
  std::printf("%s\n", ne.to_string().c_str());
  std::printf(
      "Expectation: basic-mode collisions cost nearly as much energy as\n"
      "successes while RTS/CTS collisions are ~30x cheaper; an undercutter\n"
      "pays visibly more power than conformers; pricier energy (larger\n"
      "derived e) pushes the efficient NE to larger windows — transmit\n"
      "less when transmitting costs more.\n");
  return 0;
}
