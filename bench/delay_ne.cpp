// §VIII extension — access delay at the NE and delay-aware equilibria.
//
// The paper concedes its utility ignores delay and that "the CW value of
// NE may seem too long in some cases"; deriving "a more desirable NE"
// from a richer utility is left as future work. This harness does it:
// it tabulates the mean/σ access delay along the NE band, shows that for
// the paper's own utility the efficient NE already sits at the delay
// minimum (maximizing q/T_slot and minimizing T_slot/q coincide when
// g ≫ e), and sweeps the delay-penalty weight λ to show how a
// latency-priced utility shrinks the equilibrium window.
#include <cstdio>

#include "analytical/delay.hpp"
#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Access delay at the NE and delay-aware equilibria",
      "paper §VIII discussion (delay-extended utility = future work)",
      "Basic access. Delays in ms.");

  const phy::Parameters params = phy::Parameters::paper();
  const auto mode = phy::AccessMode::kBasic;
  const game::StageGame game(params, mode);

  // 1. Delay profile across the NE band for n = 5/20/50.
  util::TextTable profile({"n", "W", "E[D] (ms)", "SD[D] (ms)", "note"});
  for (int n : {5, 20, 50}) {
    const game::EquilibriumFinder finder(game, n);
    const int w_star = finder.efficient_cw();
    for (double f : {0.1, 0.5, 1.0, 4.0, 16.0}) {
      const int w = std::max(1, static_cast<int>(w_star * f));
      const auto d = analytical::homogeneous_access_delay(w, n, params, mode);
      profile.add_row({std::to_string(n), std::to_string(w),
                       util::fmt_double(d.mean_us / 1e3, 1),
                       util::fmt_double(d.stddev_us / 1e3, 1),
                       f == 1.0 ? "<- W_c*" : ""});
    }
  }
  std::printf("%s\n", profile.to_string().c_str());

  // 2. Delay-penalized NE vs λ.
  util::TextTable aware({"lambda", "W* (n=20)", "E[D] at W* (ms)",
                         "throughput-utility kept %"});
  const int w0 = analytical::delay_aware_efficient_cw(20, params, mode, 0.0);
  const double u0 = game.homogeneous_utility_rate(w0, 20);
  for (double lambda : {0.0, 1e-13, 1e-12, 1e-11, 1e-10}) {
    const int w = analytical::delay_aware_efficient_cw(20, params, mode,
                                                       lambda);
    const auto d = analytical::homogeneous_access_delay(w, 20, params, mode);
    aware.add_row({util::fmt_double(lambda * 1e12, 2) + "e-12",
                   std::to_string(w),
                   util::fmt_double(d.mean_us / 1e3, 1),
                   util::fmt_double(
                       game.homogeneous_utility_rate(w, 20) / u0 * 100.0,
                       2)});
  }
  std::printf("%s\n", aware.to_string().c_str());
  std::printf(
      "Expectation: delay at W_c* is the minimum of each n-row, and the\n"
      "lambda sweep barely moves the equilibrium. Both follow from one\n"
      "structural fact: with g >> e, maximizing u ~ q/T_slot and minimizing\n"
      "E[D] = T_slot/q are the same program, so the efficient NE is already\n"
      "latency-optimal. Sec. VIII's worry that the NE window 'may seem too\n"
      "long' does not materialize under the saturated model — a delay-aware\n"
      "utility reshapes the NE only once saturation is relaxed (see\n"
      "bench_nonsaturated) or delay enters nonlinearly (deadlines).\n");
  return 0;
}
