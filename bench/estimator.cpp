// Ablation — TFT on *estimated* contention windows (paper §IV + ref [3]).
//
// The paper assumes perfect CW observation ("how to observe CW values in
// saturated networks is addressed in [3]"). This harness quantifies what
// real estimation costs: window-estimate accuracy versus observation
// length, and the stability of TFT vs Generous-TFT when driven by those
// estimates (the estimating-TFT min-rule ratchets downward under noise;
// GTFT's tolerance band is the fix — the practical argument for GTFT the
// paper only sketches).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/cw_estimator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "CW estimation accuracy and estimate-driven TFT stability",
      "paper §IV observation assumption (Kyasanur & Vaidya [3])",
      "Basic access, n = 5, true common window 64.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const int w = 64;

  // Sweep points are self-contained experiments with fixed seeds, fanned
  // across --jobs into per-index row slots and printed in sweep order —
  // byte-identical output for any jobs value.

  // 1. Estimation error vs observation length.
  util::TextTable acc({"observed slots", "mean |W_hat - W|/W %",
                       "attempts per node"});
  const std::vector<std::uint64_t> slot_lengths{2000, 10000, 50000, 250000,
                                                1000000};
  std::vector<std::vector<std::string>> acc_rows(slot_lengths.size());
  bench::sweep(slot_lengths.size(), jobs, [&](std::size_t k) {
    const std::uint64_t slots = slot_lengths[k];
    util::RunningStats err;
    util::RunningStats attempts;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      sim::SimConfig config;
      config.seed = 100 + seed;
      sim::Simulator simulator(config, std::vector<int>(5, w));
      const auto est = sim::estimate_windows(simulator.run_slots(slots), 6);
      for (const auto& e : est) {
        err.add(std::abs(e.w_hat - w) / w * 100.0);
        attempts.add(static_cast<double>(e.attempts));
      }
    }
    acc_rows[k] = {std::to_string(slots), util::fmt_double(err.mean(), 2),
                   util::fmt_double(attempts.mean(), 0)};
  });
  for (auto& row : acc_rows) acc.add_row(std::move(row));
  std::printf("%s\n", acc.to_string().c_str());

  // 2. Estimate-driven TFT vs GTFT across stage lengths.
  util::TextTable stab({"stage (s)", "strategy", "final min W",
                        "drift from 64 %"});
  const std::vector<double> stage_lengths{0.3, 1.0, 4.0};
  std::vector<std::vector<std::string>> stab_rows(2 * stage_lengths.size());
  bench::sweep(stab_rows.size(), jobs, [&](std::size_t k) {
    const double stage_s = stage_lengths[k / 2];
    const bool gtft = (k % 2) == 1;
    sim::EstimatingRuntime runtime(
        sim::SimConfig{}, 5,
        [&](std::size_t, auto feed, auto) -> std::unique_ptr<game::Strategy> {
          if (gtft) {
            return std::make_unique<sim::EstimatingGtft>(w, 0.75, 3, feed);
          }
          return std::make_unique<sim::EstimatingTitForTat>(w, feed);
        },
        stage_s * 1e6);
    const auto result = runtime.play(12);
    int min_cw = w;
    for (int cw : result.history.back().cw) min_cw = std::min(min_cw, cw);
    stab_rows[k] = {util::fmt_double(stage_s, 1),
                    gtft ? "gtft(0.75,3)" : "tft", std::to_string(min_cw),
                    util::fmt_double((w - min_cw) * 100.0 / w, 1)};
  });
  for (auto& row : stab_rows) stab.add_row(std::move(row));
  std::printf("%s\n", stab.to_string().c_str());
  std::printf(
      "Expectation: estimation error decays roughly as 1/sqrt(attempts);\n"
      "estimate-driven plain TFT drifts below the configured window at\n"
      "short stages (each noisy under-estimate gets matched and never\n"
      "undone) while GTFT's beta-band holds the line — the quantitative\n"
      "case for the paper's 'more tolerant version of TFT'.\n");
  return 0;
}
