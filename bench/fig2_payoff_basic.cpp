// Figure 2 — normalized global payoff U/C versus common CW, basic access.
//
// The paper plots, for the basic mode, the global payoff (normalized by
// C = g·T/(σ(1−δ))) as a function of the common contention window and
// shows that (a) the curve is unimodal with its peak at W_c*, and (b) the
// peak is a broad plateau, so near-W_c* operation is near-optimal.
//
// Output: one series per n ∈ {5, 20, 50} printed as a table and an ASCII
// profile, plus a CSV (fig2_payoff_basic.csv) for external plotting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

std::vector<int> log_grid(int lo, int hi, int points) {
  std::vector<int> grid;
  const double ratio = std::pow(static_cast<double>(hi) / lo,
                                1.0 / (points - 1));
  double w = lo;
  for (int i = 0; i < points; ++i) {
    const int wi = std::max(lo, std::min(hi, static_cast<int>(w + 0.5)));
    if (grid.empty() || grid.back() != wi) grid.push_back(wi);
    w *= ratio;
  }
  return grid;
}

std::string ascii_bar(double value, double peak, int width = 48) {
  const int len = value <= 0.0
                      ? 0
                      : static_cast<int>(value / peak * width + 0.5);
  return std::string(static_cast<std::size_t>(std::max(0, len)), '#');
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2: normalized global payoff U/C vs common CW — basic access",
      "paper Figure 2",
      "Series for n = 5/20/50; peak must sit at W_c* (Table II) and form a\n"
      "broad plateau (the paper's robustness observation).");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const std::vector<int> ns{5, 20, 50};

  util::CsvWriter csv("fig2_payoff_basic.csv", {"n", "w", "u_over_c"});
  for (int n : ns) {
    const game::EquilibriumFinder finder(game, n);
    const int w_star = finder.efficient_cw();
    const std::vector<int> grid = log_grid(2, 8 * w_star, 28);
    std::vector<double> payoff;
    payoff.reserve(grid.size());
    double peak = 0.0;
    for (int w : grid) {
      const double v = game.normalized_global_payoff(w, n);
      payoff.push_back(v);
      peak = std::max(peak, v);
      csv.add_row({static_cast<double>(n), static_cast<double>(w), v});
    }

    std::printf("--- n = %d (W_c* = %d, U/C at peak = %.4f) ---\n", n, w_star,
                game.normalized_global_payoff(w_star, n));
    util::TextTable table({"W", "U/C", "profile"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
      table.add_row({std::to_string(grid[i]), util::fmt_double(payoff[i], 4),
                     ascii_bar(payoff[i], peak)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("Series written to fig2_payoff_basic.csv\n");
  std::printf(
      "Expectation: each curve rises to its W_c*, then falls slowly; larger\n"
      "n peaks at larger W with lower peak payoff per the paper's figure.\n");
  return 0;
}
