// Figure 2 — normalized global payoff U/C versus common CW, basic access.
//
// The paper plots, for the basic mode, the global payoff (normalized by
// C = g·T/(σ(1−δ))) as a function of the common contention window and
// shows that (a) the curve is unimodal with its peak at W_c*, and (b) the
// peak is a broad plateau, so near-W_c* operation is near-optimal.
//
// Output: one series per n ∈ {5, 20, 50} printed as a table and an ASCII
// profile, plus a CSV (fig2_payoff_basic.csv) for external plotting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

std::vector<int> log_grid(int lo, int hi, int points) {
  std::vector<int> grid;
  const double ratio = std::pow(static_cast<double>(hi) / lo,
                                1.0 / (points - 1));
  double w = lo;
  for (int i = 0; i < points; ++i) {
    const int wi = std::max(lo, std::min(hi, static_cast<int>(w + 0.5)));
    if (grid.empty() || grid.back() != wi) grid.push_back(wi);
    w *= ratio;
  }
  return grid;
}

std::string ascii_bar(double value, double peak, int width = 48) {
  const int len = value <= 0.0
                      ? 0
                      : static_cast<int>(value / peak * width + 0.5);
  return std::string(static_cast<std::size_t>(std::max(0, len)), '#');
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Figure 2: normalized global payoff U/C vs common CW — basic access",
      "paper Figure 2",
      "Series for n = 5/20/50; peak must sit at W_c* (Table II) and form a\n"
      "broad plateau (the paper's robustness observation).");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const std::vector<int> ns{5, 20, 50};

  // Each n-series is an independent analytical computation (the StageGame
  // memo cache is thread-safe); fan them across --jobs and emit the CSV
  // and tables in series order afterwards, so output is byte-identical
  // for any jobs value.
  struct Series {
    int w_star = 0;
    double peak_payoff = 0.0;
    std::vector<int> grid;
    std::vector<double> payoff;
    double peak = 0.0;
  };
  std::vector<Series> series(ns.size());
  bench::sweep(ns.size(), jobs, [&](std::size_t idx) {
    const int n = ns[idx];
    Series& s = series[idx];
    const game::EquilibriumFinder finder(game, n);
    s.w_star = finder.efficient_cw();
    s.peak_payoff = game.normalized_global_payoff(s.w_star, n);
    s.grid = log_grid(2, 8 * s.w_star, 28);
    s.payoff.reserve(s.grid.size());
    for (int w : s.grid) {
      const double v = game.normalized_global_payoff(w, n);
      s.payoff.push_back(v);
      s.peak = std::max(s.peak, v);
    }
  });

  util::CsvWriter csv("fig2_payoff_basic.csv", {"n", "w", "u_over_c"});
  for (std::size_t idx = 0; idx < ns.size(); ++idx) {
    const int n = ns[idx];
    const Series& s = series[idx];
    for (std::size_t i = 0; i < s.grid.size(); ++i) {
      csv.add_row({static_cast<double>(n), static_cast<double>(s.grid[i]),
                   s.payoff[i]});
    }
    std::printf("--- n = %d (W_c* = %d, U/C at peak = %.4f) ---\n", n,
                s.w_star, s.peak_payoff);
    util::TextTable table({"W", "U/C", "profile"});
    for (std::size_t i = 0; i < s.grid.size(); ++i) {
      table.add_row({std::to_string(s.grid[i]),
                     util::fmt_double(s.payoff[i], 4),
                     ascii_bar(s.payoff[i], s.peak)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf("Series written to fig2_payoff_basic.csv\n");
  std::printf(
      "Expectation: each curve rises to its W_c*, then falls slowly; larger\n"
      "n peaks at larger W with lower peak payoff per the paper's figure.\n");
  return 0;
}
