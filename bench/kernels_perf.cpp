// Microbenchmarks of the numerical kernels (google-benchmark).
//
// DESIGN.md design-choice ablations: damped fixed-point cost vs n and
// damping factor, the scalar homogeneous fast path vs the vector solver,
// ternary vs exhaustive argmax, and raw simulator slot throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "analytical/fixed_point_solver.hpp"
#include "analytical/utility.hpp"
#include "game/equilibrium.hpp"
#include "sim/simulator.hpp"
#include "multihop/multihop_simulator.hpp"
#include "sim/cw_estimator.hpp"
#include "util/optimize.hpp"
#include "util/rng.hpp"

namespace {

using namespace smac;

void BM_SolveNetworkHeterogeneous(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> profile(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    profile[static_cast<std::size_t>(i)] = 16 << (i % 6);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytical::solve_network(profile, 6));
  }
}
BENCHMARK(BM_SolveNetworkHeterogeneous)->Arg(5)->Arg(20)->Arg(50)->Arg(100);

// A profile of n windows drawn from k distinct values, interleaved so the
// class structure is invisible to a solver that doesn't look for it.
std::vector<int> class_mixed_profile(int n, int k) {
  static const int kWindows[] = {16, 64, 256, 1024, 48, 512};
  std::vector<int> profile(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    profile[static_cast<std::size_t>(i)] = kWindows[i % k];
  }
  return profile;
}

void BM_SolveCollapsed(benchmark::State& state) {
  // The symmetry-collapsed kernel: k fixed-point equations regardless of n.
  const auto profile = class_mixed_profile(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytical::try_solve_network(profile, 6));
  }
}
BENCHMARK(BM_SolveCollapsed)
    ->Args({20, 1})->Args({20, 3})->Args({50, 3})->Args({100, 3})
    ->Args({100, 6})->Args({200, 3});

void BM_SolveFull(benchmark::State& state) {
  // The pre-collapse reference kernel: one equation per node. The ratio
  // against BM_SolveCollapsed at the same (n, k) is the tentpole speedup.
  const auto profile = class_mixed_profile(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytical::try_solve_network_full(profile, 6));
  }
}
BENCHMARK(BM_SolveFull)
    ->Args({20, 1})->Args({20, 3})->Args({50, 3})->Args({100, 3})
    ->Args({100, 6})->Args({200, 3});

void BM_SolveColdStart(benchmark::State& state) {
  // Baseline for the warm-start comparison: every solve from the
  // canonical cold start.
  const auto profile = class_mixed_profile(50, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytical::try_solve_network(profile, 6));
  }
}
BENCHMARK(BM_SolveColdStart);

void BM_SolveWarmStart(benchmark::State& state) {
  // Warm-started re-solve of a *neighboring* profile (one node nudged one
  // window step), seeded with the previous solution's τ — the
  // best-response inner loop's access pattern.
  const auto profile = class_mixed_profile(50, 3);
  auto nudged = profile;
  nudged[0] = profile[0] + 8;
  const auto base = analytical::try_solve_network(profile, 6);
  analytical::SolverOptions opts;
  opts.initial_tau = base.state.tau;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytical::try_solve_network(nudged, 6, opts));
  }
}
BENCHMARK(BM_SolveWarmStart);

void BM_SolveNetworkDampingAblation(benchmark::State& state) {
  const double damping = static_cast<double>(state.range(0)) / 100.0;
  const std::vector<int> profile(20, 32);
  analytical::SolverOptions opts;
  opts.damping = damping;
  int iterations = 0;
  for (auto _ : state) {
    const auto r = analytical::solve_network(profile, 6, opts);
    iterations = r.iterations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_SolveNetworkDampingAblation)->Arg(0)->Arg(25)->Arg(50)->Arg(75);

void BM_HomogeneousScalarPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytical::solve_network_homogeneous(64, n, 6));
  }
}
BENCHMARK(BM_HomogeneousScalarPath)->Arg(5)->Arg(50)->Arg(500);

void BM_EfficientCwTernary(benchmark::State& state) {
  const phy::Parameters params = phy::Parameters::paper();
  for (auto _ : state) {
    // Fresh game each iteration: measures the uncached search.
    const game::StageGame game(params, phy::AccessMode::kBasic);
    const game::EquilibriumFinder finder(game, 20);
    benchmark::DoNotOptimize(finder.efficient_cw());
  }
}
BENCHMARK(BM_EfficientCwTernary);

void BM_EfficientCwExhaustive(benchmark::State& state) {
  const phy::Parameters params = phy::Parameters::paper();
  for (auto _ : state) {
    const game::StageGame game(params, phy::AccessMode::kBasic);
    const auto r = util::exhaustive_int_max(
        [&](std::int64_t w) {
          return game.homogeneous_utility_rate(static_cast<int>(w), 20);
        },
        1, params.w_max);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EfficientCwExhaustive);

void BM_SimulatorSlots(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::SimConfig config;
  config.seed = 9;
  sim::Simulator simulator(config, std::vector<int>(
                                       static_cast<std::size_t>(n), 64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run_slots(10000));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorSlots)->Arg(5)->Arg(20)->Arg(50);

void BM_MultihopSimulatorSlots(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(5);
  std::vector<multihop::Vec2> pos;
  for (int i = 0; i < n; ++i) {
    pos.push_back({rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)});
  }
  multihop::MultihopConfig config;
  config.seed = 6;
  multihop::MultihopSimulator sim(
      config, multihop::Topology(pos, 250.0),
      std::vector<int>(static_cast<std::size_t>(n), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run_slots(2000));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_MultihopSimulatorSlots)->Arg(20)->Arg(50)->Arg(100);

void BM_EstimateWindows(benchmark::State& state) {
  sim::SimConfig config;
  config.seed = 8;
  sim::Simulator simulator(config, std::vector<int>(20, 64));
  const auto observed = simulator.run_slots(100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_windows(observed, 6));
  }
}
BENCHMARK(BM_EstimateWindows);

void BM_TopologyConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(9);
  std::vector<multihop::Vec2> pos;
  for (int i = 0; i < n; ++i) {
    pos.push_back({rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(multihop::Topology(pos, 250.0));
  }
}
BENCHMARK(BM_TopologyConstruction)->Arg(100)->Arg(300);

}  // namespace
