// Table III — Nash Equilibrium point, RTS/CTS access.
//
// Paper reports, for n = 5/20/50:
//   W_c* (model) = 22 / 48 / 116
//   W̄_c* (NS-2) = 22.9 / 46.4 / 114.2, Var = 1.63 / 1.78 / 1.65
//
// The paper derives its model column from the Lemma 3 Q-root, which
// assumes T_s ≈ T_c — a poor approximation under RTS/CTS (T_c' ≪ T_s').
// We therefore report both the Q-root window (matching the paper's n = 20
// and n = 50 entries closely) and the exact discrete argmax of the full
// utility, plus the simulated per-node optimum. Because the RTS/CTS payoff
// surface is nearly flat around the optimum (paper §VII.B notes the same),
// we also report the payoff ratio between the two model answers.
#include <vector>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

struct SimNe {
  double mean_w = 0.0;
  double var_w = 0.0;
};

// Grid points fan across `jobs` (fixed seed per point, index-ordered
// vote reduction ⇒ identical output at any job count).
SimNe simulated_ne(int n, int w_center, std::uint64_t slots_per_point,
                   std::size_t jobs) {
  std::vector<int> grid;
  const int span = std::max(4, w_center / 3);
  const int step = std::max(1, span / 6);
  for (int w = std::max(1, w_center - span); w <= w_center + span; w += step) {
    grid.push_back(w);
  }
  std::vector<std::vector<double>> payoff(grid.size());
  bench::sweep(grid.size(), jobs, [&](std::size_t gi) {
    const int w = grid[gi];
    sim::SimConfig config;
    config.mode = phy::AccessMode::kRtsCts;
    config.seed = 0x7ab1e3 + static_cast<std::uint64_t>(w);
    sim::Simulator simulator(config, std::vector<int>(n, w));
    payoff[gi] = simulator.run_slots(slots_per_point).payoff_rate;
  });
  std::vector<double> best_payoff(static_cast<std::size_t>(n), -1e30);
  std::vector<int> best_w(static_cast<std::size_t>(n), grid.front());
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (payoff[gi][idx] > best_payoff[idx]) {
        best_payoff[idx] = payoff[gi][idx];
        best_w[idx] = grid[gi];
      }
    }
  }
  std::vector<double> ws(best_w.begin(), best_w.end());
  return {util::mean_of(ws), util::variance_of(ws)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Table III: Nash Equilibrium point — RTS/CTS access",
      "paper Table III (paper: model 22/48/116, sim 22.9/46.4/114.2)",
      "Q-root = paper's method (T_s ≈ T_c approx); exact = full-utility\n"
      "argmax; sim = per-node payoff-maximizing common CW.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kRtsCts);

  util::TextTable table({"n", "Wc* (paper)", "Wc (Q-root)", "Wc* (exact)",
                         "u(Qroot)/u(exact)", "Wc* (sim mean)",
                         "Var(Wc*) (sim)"});
  const struct { int n; int paper; } rows[] = {{5, 22}, {20, 48}, {50, 116}};
  for (const auto& row : rows) {
    const game::EquilibriumFinder finder(game, row.n);
    const int w_exact = finder.efficient_cw();
    const auto w_qroot = finder.w_star_continuous();
    const double u_exact = game.homogeneous_utility_rate(w_exact, row.n);
    const double u_qroot = game.homogeneous_utility_rate(
        std::max(1, static_cast<int>(w_qroot.value_or(1.0) + 0.5)), row.n);
    const SimNe sim_ne = simulated_ne(row.n, w_exact, 250000, jobs);
    table.add_row({std::to_string(row.n), std::to_string(row.paper),
                   util::fmt_double(w_qroot.value_or(-1.0), 1),
                   std::to_string(w_exact),
                   util::fmt_double(u_qroot / u_exact, 4),
                   util::fmt_double(sim_ne.mean_w, 1),
                   util::fmt_double(sim_ne.var_w, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: Q-root column ≈ paper's model column for n = 20/50; the\n"
      "exact argmax differs because T_c' << T_s' breaks the paper's\n"
      "approximation, but the payoff ratio shows the surface is so flat that\n"
      "both windows are payoff-equivalent to within a fraction of a percent.\n");
  return 0;
}
