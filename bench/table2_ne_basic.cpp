// Table II — Nash Equilibrium point, basic access.
//
// Paper reports, for n = 5/20/50:
//   W_c* (model) = 76 / 336 / 879
//   W̄_c* (NS-2 simulation, per-node payoff-maximizing CW) = 75.6/337.4/880.5
//   Var(W_c*) = 3.35 / 2.78 / 2.65
//
// We reproduce all three columns: the model value from the exact discrete
// argmax of the stage utility (plus the continuous Q-root for reference),
// and the simulated per-node optimum by sweeping the common window in the
// slot-level simulator and recording, for every node, the window that
// maximized its measured payoff.
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

struct SimNe {
  double mean_w = 0.0;
  double var_w = 0.0;
};

// Sweeps common windows around w_star; each node votes for the window
// that maximized its own measured payoff rate. Grid points are
// independent fixed-seed simulations fanned across `jobs`; the vote
// reduces per-point payoffs in grid order, so the result is identical at
// any job count.
SimNe simulated_ne(phy::AccessMode mode, int n, int w_star,
                   std::uint64_t slots_per_point, std::size_t jobs) {
  std::vector<int> grid;
  const int span = std::max(4, w_star / 8);
  const int step = std::max(1, span / 6);
  for (int w = w_star - span; w <= w_star + span; w += step) {
    grid.push_back(std::max(1, w));
  }

  std::vector<std::vector<double>> payoff(grid.size());
  bench::sweep(grid.size(), jobs, [&](std::size_t gi) {
    const int w = grid[gi];
    sim::SimConfig config;
    config.mode = mode;
    config.seed = 0x51ab00 + static_cast<std::uint64_t>(w);
    sim::Simulator simulator(config, std::vector<int>(n, w));
    payoff[gi] = simulator.run_slots(slots_per_point).payoff_rate;
  });

  std::vector<double> best_payoff(static_cast<std::size_t>(n), -1e30);
  std::vector<int> best_w(static_cast<std::size_t>(n), grid.front());
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (payoff[gi][idx] > best_payoff[idx]) {
        best_payoff[idx] = payoff[gi][idx];
        best_w[idx] = grid[gi];
      }
    }
  }
  std::vector<double> ws;
  ws.reserve(best_w.size());
  for (int w : best_w) ws.push_back(static_cast<double>(w));
  return {util::mean_of(ws), util::variance_of(ws)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Table II: Nash Equilibrium point — basic access",
      "paper Table II (paper: model 76/336/879, sim 75.6/337.4/880.5)",
      "Model W_c* = exact discrete argmax; W_cont = Lemma 3 Q-root;\n"
      "sim = per-node payoff-maximizing common CW in the slot simulator.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);

  util::TextTable table({"n", "Wc* (paper)", "Wc* (model)", "Wc (Q-root)",
                         "Wc* (sim mean)", "Var(Wc*) (sim)"});
  const struct { int n; int paper; } rows[] = {{5, 76}, {20, 336}, {50, 879}};
  for (const auto& row : rows) {
    const game::EquilibriumFinder finder(game, row.n);
    const int w_star = finder.efficient_cw();
    const auto w_cont = finder.w_star_continuous();
    // Longer measurement for larger n: per-node success counts shrink as
    // 1/n while the plateau flattens, so the per-node vote needs more
    // samples to stay tight (the paper's 1000 s NS-2 runs did the same).
    const std::uint64_t slots = 200000 + 16000ULL * static_cast<std::uint64_t>(row.n);
    const SimNe sim_ne =
        simulated_ne(phy::AccessMode::kBasic, row.n, w_star, slots, jobs);
    table.add_row({std::to_string(row.n), std::to_string(row.paper),
                   std::to_string(w_star),
                   util::fmt_double(w_cont.value_or(-1.0), 1),
                   util::fmt_double(sim_ne.mean_w, 1),
                   util::fmt_double(sim_ne.var_w, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: model within ~5%% of the paper's column; simulated mean\n"
      "tracks the model value (paper saw the same agreement with NS-2).\n");
  return 0;
}
