// Fault resilience: equilibrium recovery under churn and bursty loss.
//
// The paper's repeated-game results assume a clean network: nobody
// crashes, the channel loses packets i.i.d., and every window observation
// arrives intact. This harness stress-tests that machinery with the
// fault-injection subsystem (src/fault): a churn × burst-loss grid where
// each cell plays a GTFT population for 120 stages with a scripted crash
// (stage 30) and rejoin (stage 60) of one player, random churn on top,
// a Gilbert–Elliott bursty channel layered on the PER, and 10% lossy
// window observations. Reported per cell: the window the population ends
// on, the stage the profile stabilized from, the recovery time after the
// last topology fault, and the DegradationReport (crashes/joins, lost and
// noisy observations, degraded/failed stage solves).
//
// Every cell is a self-contained deterministic experiment with a fixed
// per-cell seed, fanned across --jobs workers and reduced in grid order —
// stdout is byte-identical for any jobs value (the acceptance check runs
// this binary at --jobs 1 and --jobs 4 and diffs the output, so nothing
// here may print the job count).
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "game/equilibrium.hpp"
#include "game/forgiveness_grid.hpp"
#include "game/observation_filter.hpp"
#include "game/repeated_game.hpp"
#include "game/stage_game.hpp"
#include "parallel/replication.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

constexpr int kPlayers = 6;
constexpr int kStages = 120;
constexpr std::uint64_t kBaseSeed = 0xfa57;

struct Cell {
  double churn = 0.0;
  double per_bad = 0.0;
  std::optional<int> converged_cw;
  int stable_from = 0;
  int recovery_stages = 0;
  fault::DegradationReport report;
};

Cell run_cell(const game::StageGame& game, int w_coop, double churn,
              double per_bad, double obs_noise, std::uint64_t seed,
              bool gtft) {
  fault::FaultPlan plan;
  plan.scripted.push_back({30, 0, fault::FaultKind::kCrash});
  plan.scripted.push_back({60, 0, fault::FaultKind::kJoin});
  plan.churn.crash_rate = churn;
  plan.churn.recover_rate = churn > 0.0 ? 0.25 : 0.0;
  plan.channel.p_good_to_bad = per_bad > 0.0 ? 0.08 : 0.0;
  plan.channel.p_bad_to_good = 0.25;
  plan.channel.per_bad = per_bad;
  // Observation *loss* (stale beliefs) is recoverable and always on in
  // the grid; observation *noise* (false low reads) is the absorbing
  // ratchet shown separately in the contrast section.
  plan.observation.loss_probability = 0.10;
  plan.observation.noise_probability = obs_noise;
  plan.observation.noise_magnitude = 4;

  fault::FaultInjector injector(plan, kPlayers, seed);
  game::RepeatedGameEngine engine(
      game, gtft ? game::make_gtft_population(kPlayers, w_coop, 0.9, 3)
                 : game::make_tft_population(kPlayers, w_coop));
  const game::RepeatedGameResult result = engine.play(kStages, &injector);

  Cell cell;
  cell.churn = churn;
  cell.per_bad = per_bad;
  cell.converged_cw = result.converged_cw;
  cell.stable_from = result.stable_from;
  cell.report = result.degradation;
  // Recovery: stages from the last crash/join until the profile settled
  // for good. A grid cell with no topology fault reports its plain
  // convergence time instead.
  cell.recovery_stages =
      cell.report.last_fault_stage >= 0
          ? std::max(0, result.stable_from - cell.report.last_fault_stage)
          : result.stable_from;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Fault resilience: GTFT equilibrium recovery under churn + bursty loss",
      "robustness extension of paper §IV (no paper counterpart)",
      "6 GTFT(0.9,3) players, 120 stages, scripted crash@30/rejoin@60 of\n"
      "player 0, random churn, Gilbert-Elliott bursty PER, 10% lossy\n"
      "window observations. Deterministic per-cell seeds.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  // Deliberately no jobs line: output must be byte-identical at any --jobs.

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kRtsCts);
  const game::EquilibriumFinder finder(game, kPlayers);
  const int w_coop = finder.efficient_cw();
  std::printf("cooperative window W* = %d (efficient NE, n = %d)\n\n", w_coop,
              kPlayers);

  const std::vector<double> churn_rates{0.0, 0.02, 0.05};
  const std::vector<double> burst_pers{0.0, 0.25, 0.5};
  std::vector<Cell> cells(churn_rates.size() * burst_pers.size());
  bench::sweep(cells.size(), jobs, [&](std::size_t k) {
    const double churn = churn_rates[k / burst_pers.size()];
    const double per_bad = burst_pers[k % burst_pers.size()];
    cells[k] = run_cell(game, w_coop, churn, per_bad, 0.0,
                        parallel::stream_seed(kBaseSeed, k), true);
  });

  util::TextTable table({"churn", "PER_bad", "final W", "stable from",
                         "recovery (stages)", "crash/join", "lost/noisy obs",
                         "degraded/failed solves"});
  fault::DegradationReport merged;
  for (const Cell& cell : cells) {
    merged.merge(cell.report);
    table.add_row(
        {util::fmt_double(cell.churn, 2), util::fmt_double(cell.per_bad, 2),
         cell.converged_cw ? std::to_string(*cell.converged_cw) : "mixed",
         std::to_string(cell.stable_from),
         std::to_string(cell.recovery_stages),
         std::to_string(cell.report.crash_events) + "/" +
             std::to_string(cell.report.join_events),
         std::to_string(cell.report.lost_observations) + "/" +
             std::to_string(cell.report.noisy_observations),
         std::to_string(cell.report.degraded_stages) + "/" +
             std::to_string(cell.report.failed_stages)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("grid total — %s\n\n", merged.summary().c_str());

  // Contrast: add 5% *noisy* observations (false low reads) at the
  // mid-grid fault point. Min-matching retaliation makes any under-read
  // absorbing — strict TFT ratchets to W = 1 almost immediately, and even
  // GTFT's r0-stage averaging only delays the collapse, because neither
  // strategy ever forgives upward. A robustness limit of the paper's §IV
  // design, not of the implementation.
  {
    const Cell tft = run_cell(game, w_coop, 0.02, 0.25, 0.05,
                              parallel::stream_seed(kBaseSeed, 101), false);
    const Cell gtft = run_cell(game, w_coop, 0.02, 0.25, 0.05,
                               parallel::stream_seed(kBaseSeed, 101), true);
    std::printf("with 5%% noisy observations (churn 0.02, PER_bad 0.25):\n"
                "  strict TFT : final W = %s, profile last moved at stage %d\n"
                "  GTFT(0.9,3): final W = %s, profile last moved at stage %d\n"
                "  (the loss-only grid above is immune to this ratchet)\n\n",
                tft.converged_cw ? std::to_string(*tft.converged_cw).c_str()
                                 : "mixed",
                tft.stable_from,
                gtft.converged_cw ? std::to_string(*gtft.converged_cw).c_str()
                                  : "mixed",
                gtft.stable_from);
  }

  // Forgiveness grid (noise level × observation filter × reaction rule):
  // the robustness layer closing the ratchet above. Every cell plays 6
  // players of one rule for 120 stages under persistent false-low window
  // reads (plus the grid's 10% observation loss), optionally behind an
  // ObservationFilter. Cells sharing a noise level share an injector seed,
  // so rules and filters face the same fault stream; "tail mean min W"
  // (mean of the per-stage minimum window over the last 40 stages) is
  // where the population actually lives — 1.0 means ratcheted, ~W* means
  // held or recovered.
  {
    const std::vector<double> noise_levels{0.05, 0.15};
    std::vector<game::ObservationFilterConfig> filters(3);
    filters[0].kind = game::FilterKind::kNone;
    filters[1].kind = game::FilterKind::kMedian;
    filters[1].window = 5;
    filters[2].kind = game::FilterKind::kTrimmedMean;
    filters[2].window = 7;
    filters[2].trim_fraction = 0.25;
    const std::vector<game::ReactionRule> rules{
        game::ReactionRule::kTft, game::ReactionRule::kGtft,
        game::ReactionRule::kContriteTft, game::ReactionRule::kForgivingGtft};

    std::vector<game::ForgivenessCellSpec> specs;
    for (std::size_t a = 0; a < noise_levels.size(); ++a) {
      for (const auto& filter : filters) {
        for (const game::ReactionRule rule : rules) {
          game::ForgivenessCellSpec spec;
          spec.rule = rule;
          spec.filter = filter;
          spec.noise_probability = noise_levels[a];
          spec.players = kPlayers;
          spec.stages = kStages;
          spec.w_coop = w_coop;
          spec.seed = parallel::stream_seed(kBaseSeed ^ 0xf0, a);
          specs.push_back(spec);
        }
      }
    }
    std::vector<game::ForgivenessCell> grid(specs.size());
    bench::sweep(specs.size(), jobs, [&](std::size_t k) {
      grid[k] = game::run_forgiveness_cell(game, specs[k]);
    });
    util::TextTable table({"noise", "filter", "strategy", "final W",
                           "final min W", "tail mean min W", "stable from",
                           "noisy obs"});
    for (std::size_t k = 0; k < specs.size(); ++k) {
      table.add_row(game::forgiveness_row(specs[k], grid[k]));
    }
    std::printf("forgiveness grid (%d players, %d stages, 10%% obs loss, "
                "noise magnitude +/-4):\n%s\n",
                kPlayers, kStages, table.to_string().c_str());
    std::printf("contrite-tft drifts back to W* after 3 clean stages "
                "(halving the gap per stage); forgiving-gtft needs its "
                "smoothed trigger low for 2 consecutive stages before "
                "punishing and relaxes upward after 2 clean ones; the "
                "median/trimmed-mean filters reject isolated false reads "
                "before either rule sees them.\n\n");
  }

  // Slot-level counterpart: the single-hop simulator under the same
  // Gilbert-Elliott chain. Fixed seed per point; throughput degrades with
  // the fraction of slots spent in the Bad state.
  {
    util::TextTable slot_table(
        {"PER_bad", "bad-state slots", "throughput", "error slots"});
    std::vector<sim::SimResult> runs(burst_pers.size());
    bench::sweep(runs.size(), jobs, [&](std::size_t k) {
      sim::SimConfig config;
      config.mode = phy::AccessMode::kRtsCts;
      config.seed = parallel::stream_seed(kBaseSeed ^ 0x51a7, k);
      config.faults.channel.p_good_to_bad = burst_pers[k] > 0.0 ? 0.02 : 0.0;
      config.faults.channel.p_bad_to_good = 0.10;
      config.faults.channel.per_bad = burst_pers[k];
      sim::Simulator simulator(config, std::vector<int>(kPlayers, w_coop));
      runs[k] = simulator.run_slots(120000);
    });
    for (std::size_t k = 0; k < runs.size(); ++k) {
      const sim::SimResult& r = runs[k];
      slot_table.add_row(
          {util::fmt_double(burst_pers[k], 2),
           util::fmt_percent(static_cast<double>(r.bad_state_slots) /
                                 static_cast<double>(r.slots),
                             1),
           util::fmt_double(r.throughput, 4),
           std::to_string(r.error_slots)});
    }
    std::printf("slot-level Gilbert-Elliott (6 nodes at W*, 120k slots):\n%s\n",
                slot_table.to_string().c_str());
  }

  // Replicated mid-grid cell under sequential stopping: the same faulted
  // GTFT game across independent fault trajectories, streamed until the
  // recovery-time CI half-width meets --ci-target (or the --max-reps
  // budget, default 6, in batches of 3, runs out). Stop points are
  // seed-determined and jobs-invariant, so this section stays
  // byte-identical at any --jobs too.
  {
    const parallel::StoppingRule rule = bench::resolve_stopping(
        bench::stopping_option(argc, argv), "recovery stages", 6, 3);
    const parallel::ReplicationRunner runner(
        {rule.max_reps, kBaseSeed ^ 0x5eedULL, jobs});
    const auto summary = runner.run_sequential(
        {"final W", "stable from", "recovery stages"}, rule,
        [&](std::uint64_t seed, std::size_t /*index*/) {
          const Cell cell = run_cell(game, w_coop, 0.02, 0.25, 0.0, seed,
                                     true);
          return std::vector<double>{
              static_cast<double>(cell.converged_cw.value_or(-1)),
              static_cast<double>(cell.stable_from),
              static_cast<double>(cell.recovery_stages)};
        });
    std::printf("replicated mid-grid cell (churn 0.02, PER_bad 0.25, "
                "override: --ci-target X, --ci-rel X, --max-reps N):\n%s\n%s\n",
                summary.stopping.summary().c_str(),
                util::format_metric_summaries(summary.metrics).c_str());
  }

  std::printf(
      "Expectation: every grid cell holds (or quickly returns to) W*\n"
      "despite the crash/rejoin, churn, bursty loss, and stale (lost)\n"
      "observations — recovery of a handful of stages at most. Noisy\n"
      "observations ratchet plain TFT/GTFT to W = 1 (the contrast rows),\n"
      "but the forgiveness grid shows the fix: contrite-tft and\n"
      "forgiving-gtft live at or near W* under the same noise (tail mean\n"
      "min W ~ W*), and an observation filter alone already rescues the\n"
      "plain rules from isolated false reads. Bursty loss raises the\n"
      "effective PER during Bad episodes but never aborts a run: failed\n"
      "stage solves (if any) reuse the last converged payoffs and are\n"
      "accounted in the DegradationReport, never thrown.\n");
  return 0;
}
