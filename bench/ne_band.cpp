// Theorem 2 verification — the NE band [W_c0, W_c*] under TFT threats.
//
// Theorem 2: every common window in [W_c0, W_c*] is a NE of the repeated
// game. The proof rests on two facts — upward deviations lose immediately
// (Lemma 4) and downward deviations lose after TFT retaliation when
// players are long-sighted. This harness makes both quantitative: for
// common windows across (and beyond) the band it reports the best
// downward deviation's discounted gain at the paper's δ = 0.9999 and at a
// short-sighted δ = 0.5, plus the upward-deviation stage loss.
#include <cstdio>

#include "bench_common.hpp"
#include "game/deviation.hpp"
#include "game/equilibrium.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "The Nash band: deviation gains across common windows",
      "paper Theorem 2 + Lemma 4 (numeric verification)",
      "Basic access, n = 5, TFT reaction lag m = 1. Gains relative to\n"
      "conforming payoff; NE requires <= 0 at delta -> 1.");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const int n = 5;
  const game::EquilibriumFinder finder(game, n);
  const auto band = finder.nash_set();
  std::printf("NE band: [%d, %d]\n\n", band.w_min_viable, band.w_efficient);

  util::TextTable table({"W_c", "in band", "down-dev gain % (d=0.9999)",
                         "down-dev gain % (d=0.5)",
                         "up-dev stage loss %"});
  const int w_star = band.w_efficient;
  for (int w_c : {std::max(1, band.w_min_viable), w_star / 4, w_star / 2,
                  3 * w_star / 4, w_star, w_star + w_star / 4,
                  2 * w_star}) {
    auto gain_at = [&](double delta) {
      const auto best =
          game::best_shortsighted_deviation(game, n, w_c, delta, 1);
      return best.outcome.u_conform != 0.0
                 ? best.outcome.gain / std::abs(best.outcome.u_conform) *
                       100.0
                 : 0.0;
    };
    const auto up = game::deviation_stage_payoffs(game, n, w_c, 2 * w_c);
    const double up_loss =
        (up.symmetric - up.deviator) / std::abs(up.symmetric) * 100.0;
    table.add_row({std::to_string(w_c),
                   band.contains(w_c) ? "yes" : "no",
                   util::fmt_double(gain_at(0.9999), 4),
                   util::fmt_double(gain_at(0.5), 2),
                   util::fmt_double(up_loss, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: inside the band the long-sighted deviation gain is\n"
      "~0 or negative (no profitable deviation: NE), while delta = 0.5\n"
      "yields large gains (short-sighted players defect, Sec. V.D); above\n"
      "the band (W_c > W_c*) long-sighted downward deviation turns\n"
      "profitable — those profiles are NOT equilibria, exactly where\n"
      "Theorem 2 stops. Upward deviation always loses its stage payoff.\n");
  return 0;
}
