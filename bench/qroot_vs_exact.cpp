// Ablation — the paper's Q-root condition vs exact discrete maximization.
//
// Lemma 3 derives the efficient τ from Q(τ) = 0 under two approximations
// (g ≫ e and T_s ≈ T_c). This ablation quantifies, across n and both
// access modes, how far the Q-root window sits from the exact argmax of
// the unapproximated utility and how much payoff the approximation costs.
// It explains the Table III discrepancy: T_s ≈ T_c is fine in basic mode
// and poor under RTS/CTS, yet the payoff cost stays negligible because the
// optimum is a plateau.
#include <cmath>
#include <cstdio>

#include "analytical/utility.hpp"
#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Ablation: Lemma 3 Q-root vs exact discrete argmax",
      "paper Lemma 3 / Tables II-III methodology",
      "window gap and payoff cost of the paper's T_s ~ T_c approximation.");

  const phy::Parameters params = phy::Parameters::paper();
  util::TextTable table({"mode", "n", "W (Q-root)", "W (exact)", "gap %",
                         "payoff cost %"});
  for (auto mode : {phy::AccessMode::kBasic, phy::AccessMode::kRtsCts}) {
    const game::StageGame game(params, mode);
    for (int n : {2, 5, 10, 20, 50, 100}) {
      const game::EquilibriumFinder finder(game, n);
      const int w_exact = finder.efficient_cw();
      const auto w_qroot = finder.w_star_continuous();
      if (!w_qroot) continue;
      const int w_q = std::max(1, static_cast<int>(*w_qroot + 0.5));
      const double u_exact = game.homogeneous_utility_rate(w_exact, n);
      const double u_q = game.homogeneous_utility_rate(w_q, n);
      table.add_row(
          {to_string(mode), std::to_string(n), std::to_string(w_q),
           std::to_string(w_exact),
           util::fmt_double(
               std::abs(w_q - w_exact) * 100.0 / w_exact, 1),
           util::fmt_double((1.0 - u_q / u_exact) * 100.0, 3)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: basic-mode gap stays within a few percent; RTS/CTS gap\n"
      "grows large (T_c' << T_s' breaks the approximation) but the payoff\n"
      "cost column stays near zero — both answers live on the plateau,\n"
      "which is why the paper's Table III values are operationally fine.\n");
  return 0;
}
