// Machine-readable solver perf tracking: BENCH_solver.json.
//
// Times the symmetry-collapsed heterogeneous solver (try_solve_network)
// against the pre-collapse per-node reference kernel
// (try_solve_network_full) over an (n, k) grid, reporting the median
// ns/solve for each, the speedup ratio, and the max |Δτ| between the two
// kernels' solutions (the ≤ 1e-12 agreement contract, asserted bitwise-
// tolerant in tests/analytical/symmetry_collapse_test.cpp). Also times
// cold vs warm-started re-solves of a perturbed profile — the
// best-response inner-loop access pattern.
//
// Also records a solves/sec throughput trajectory for the lockstep batch
// kernel (try_solve_classes_batch) at batch sizes 1/16/256/4096, cold
// (distinct profiles, no hints) and warm (re-solves seeded with their own
// solution — the repeated-game stage pattern), plus one SolverService
// drain of deduplicated requests.
//
// Usage: bench_solver_json [output.json]   (default BENCH_solver.json in
// the working directory). Wall-clock numbers obviously vary by machine;
// the JSON is a trajectory record, not a determinism surface.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analytical/batch_solver.hpp"
#include "analytical/fixed_point_solver.hpp"
#include "analytical/solver_service.hpp"

namespace {

using namespace smac;
using Clock = std::chrono::steady_clock;

std::vector<int> class_mixed_profile(int n, int k) {
  static const int kWindows[] = {16, 64, 256, 1024, 48, 512};
  std::vector<int> profile(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    profile[static_cast<std::size_t>(i)] = kWindows[i % k];
  }
  return profile;
}

// Median ns of `reps` timed calls of fn() (each called once per sample).
template <class Fn>
double median_ns(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Point {
  int n = 0;
  int k = 0;
  double full_ns = 0.0;
  double collapsed_ns = 0.0;
  double speedup = 0.0;
  double max_abs_delta = 0.0;
  bool both_converged = false;
};

Point measure(int n, int k, int reps) {
  const std::vector<int> profile = class_mixed_profile(n, k);
  Point p;
  p.n = n;
  p.k = k;

  analytical::TrySolveResult full;
  analytical::TrySolveResult collapsed;
  p.full_ns = median_ns(reps, [&] {
    full = analytical::try_solve_network_full(profile, 6);
  });
  p.collapsed_ns = median_ns(reps, [&] {
    collapsed = analytical::try_solve_network(profile, 6);
  });
  p.speedup = p.collapsed_ns > 0.0 ? p.full_ns / p.collapsed_ns : 0.0;
  p.both_converged = full.state.converged && collapsed.state.converged;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    p.max_abs_delta = std::max(
        p.max_abs_delta, std::abs(full.state.tau[i] - collapsed.state.tau[i]));
    p.max_abs_delta = std::max(
        p.max_abs_delta, std::abs(full.state.p[i] - collapsed.state.p[i]));
  }
  return p;
}

struct ThroughputPoint {
  int batch = 0;
  double cold_ns = 0.0;  ///< amortized ns per solve, distinct profiles
  double warm_ns = 0.0;  ///< amortized ns per solve, self-seeded re-solves
};

/// `count` distinct (n = 50, k = 3-ish) instances: each perturbs a
/// different window of the base mix, so a cold batch really solves
/// `count` different class systems.
std::vector<analytical::ClassProfileInstance> cold_batch(int count) {
  const std::vector<int> base = class_mixed_profile(50, 3);
  std::vector<analytical::ClassProfileInstance> instances(
      static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    std::vector<int> profile = base;
    profile[static_cast<std::size_t>(i) % profile.size()] += 1 + i % 97;
    instances[static_cast<std::size_t>(i)].classes =
        analytical::classify_profile(profile);
    instances[static_cast<std::size_t>(i)].max_stage = 6;
  }
  return instances;
}

/// `count` re-solves of one profile, each seeded with its own solution —
/// the repeated-game stage pattern the warm rung exists for.
std::vector<analytical::ClassProfileInstance> warm_batch(int count) {
  analytical::ClassProfileInstance proto;
  proto.classes = analytical::classify_profile(class_mixed_profile(50, 3));
  proto.max_stage = 6;
  const analytical::TrySolveResult solved = analytical::try_solve_classes(
      proto.classes, proto.max_stage, proto.opts, proto.packet_error_rate);
  proto.opts.initial_tau = solved.state.tau;
  return std::vector<analytical::ClassProfileInstance>(
      static_cast<std::size_t>(count), proto);
}

ThroughputPoint measure_throughput(int batch) {
  // Large batches amortize per-call noise themselves; fewer reps keep the
  // bench fast without hurting the median.
  const int reps = batch >= 256 ? 11 : 31;
  ThroughputPoint point;
  point.batch = batch;
  {
    const auto instances = cold_batch(batch);
    point.cold_ns =
        median_ns(reps, [&] {
          (void)analytical::try_solve_classes_batch(instances);
        }) /
        batch;
  }
  {
    const auto instances = warm_batch(batch);
    point.warm_ns =
        median_ns(reps, [&] {
          (void)analytical::try_solve_classes_batch(instances);
        }) /
        batch;
  }
  return point;
}

double solves_per_sec(double ns_per_solve) {
  return ns_per_solve > 0.0 ? 1e9 / ns_per_solve : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_solver.json";
  const int reps = 31;  // odd: the median is a real sample

  std::vector<Point> points;
  for (int k : {1, 2, 3, 6}) {
    for (int n : {5, 20, 50, 100, 200}) {
      if (k > n) continue;
      points.push_back(measure(n, k, reps));
    }
  }

  // Cold vs warm on a (50, 3) profile, two access patterns:
  //   * same-profile re-solve seeded with its own solution — the repeated-
  //     game stage pattern (what NetworkSolveCache also short-circuits);
  //   * a one-node-nudged neighbor seeded with the unperturbed solution —
  //     the best-response ternary-search pattern. The damped iteration
  //     contracts linearly, so a nearby start saves only O(log) iterations
  //     here; the same-profile case converges almost immediately.
  const std::vector<int> profile = class_mixed_profile(50, 3);
  std::vector<int> nudged = profile;
  nudged[0] = profile[0] + 8;
  const analytical::TrySolveResult base =
      analytical::try_solve_network(profile, 6);
  analytical::SolverOptions warm_opts;
  warm_opts.initial_tau = base.state.tau;
  const double cold_ns = median_ns(reps, [&] {
    (void)analytical::try_solve_network(nudged, 6);
  });
  const double warm_ns = median_ns(reps, [&] {
    (void)analytical::try_solve_network(nudged, 6, warm_opts);
  });
  const double cold_same_ns = median_ns(reps, [&] {
    (void)analytical::try_solve_network(profile, 6);
  });
  const double warm_same_ns = median_ns(reps, [&] {
    (void)analytical::try_solve_network(profile, 6, warm_opts);
  });

  // Batch-kernel throughput trajectory (amortized ns/solve), plus one
  // SolverService drain: 1024 requests over 512 distinct profiles — the
  // dedup-then-batch path a tournament prefetch takes. A fresh service
  // per sample keeps every drain cold.
  std::vector<ThroughputPoint> throughput;
  for (const int batch : {1, 16, 256, 4096}) {
    throughput.push_back(measure_throughput(batch));
  }
  const int service_requests = 1024;
  const int service_distinct = 512;
  const auto service_instances = cold_batch(service_distinct);
  const double service_ns =
      median_ns(11, [&] {
        analytical::SolverService service;
        for (int r = 0; r < service_requests; ++r) {
          const auto& classes =
              service_instances[static_cast<std::size_t>(r % service_distinct)]
                  .classes;
          std::vector<int> w(classes.node_count());
          for (std::size_t i = 0; i < w.size(); ++i) {
            w[i] = classes.window[static_cast<std::size_t>(classes.class_of[i])];
          }
          (void)service.submit(std::move(w), 6, 0.0);
        }
        service.drain();
      }) /
      service_requests;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"heterogeneous solver, collapsed vs "
                    "full kernel\",\n");
  std::fprintf(out, "  \"unit\": \"median ns/solve over %d samples\",\n",
               reps);
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"n\": %d, \"k\": %d, \"full_ns\": %.0f, "
                 "\"collapsed_ns\": %.0f, \"speedup\": %.2f, "
                 "\"max_abs_delta\": %.3g, \"both_converged\": %s}%s\n",
                 p.n, p.k, p.full_ns, p.collapsed_ns, p.speedup,
                 p.max_abs_delta, p.both_converged ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"warm_start\": {\"n\": 50, \"k\": 3,\n"
               "    \"neighbor\": {\"cold_ns\": %.0f, \"warm_ns\": %.0f, "
               "\"speedup\": %.2f},\n"
               "    \"same_profile\": {\"cold_ns\": %.0f, \"warm_ns\": %.0f, "
               "\"speedup\": %.2f}}\n",
               cold_ns, warm_ns, warm_ns > 0.0 ? cold_ns / warm_ns : 0.0,
               cold_same_ns, warm_same_ns,
               warm_same_ns > 0.0 ? cold_same_ns / warm_same_ns : 0.0);
  std::fprintf(out, "  ,\"throughput\": {\n");
  std::fprintf(out,
               "    \"unit\": \"amortized ns/solve and solves/sec over the "
               "batch\",\n");
  std::fprintf(out,
               "    \"baseline_warm_single_ns\": %.0f,\n", warm_same_ns);
  std::fprintf(out, "    \"batch\": [\n");
  for (std::size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputPoint& t = throughput[i];
    std::fprintf(out,
                 "      {\"batch\": %d, \"cold_ns\": %.0f, "
                 "\"cold_solves_per_sec\": %.0f, \"warm_ns\": %.0f, "
                 "\"warm_solves_per_sec\": %.0f}%s\n",
                 t.batch, t.cold_ns, solves_per_sec(t.cold_ns), t.warm_ns,
                 solves_per_sec(t.warm_ns),
                 i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"service\": {\"requests\": %d, \"distinct\": %d, "
               "\"ns_per_request\": %.0f, \"requests_per_sec\": %.0f}\n",
               service_requests, service_distinct, service_ns,
               solves_per_sec(service_ns));
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  // Mirror to stdout so CI logs capture the trajectory without artifacts.
  std::printf("%-5s %-3s %12s %14s %9s %14s\n", "n", "k", "full ns",
              "collapsed ns", "speedup", "max |delta|");
  for (const Point& p : points) {
    std::printf("%-5d %-3d %12.0f %14.0f %8.2fx %14.3g%s\n", p.n, p.k,
                p.full_ns, p.collapsed_ns, p.speedup, p.max_abs_delta,
                p.both_converged ? "" : "  (non-converged)");
  }
  std::printf("warm start (n=50, k=3): neighbor cold %.0f ns, warm %.0f ns "
              "(%.2fx); same-profile cold %.0f ns, warm %.0f ns (%.2fx)\n",
              cold_ns, warm_ns, warm_ns > 0.0 ? cold_ns / warm_ns : 0.0,
              cold_same_ns, warm_same_ns,
              warm_same_ns > 0.0 ? cold_same_ns / warm_same_ns : 0.0);
  std::printf("batch throughput (n=50, k=3; amortized ns/solve):\n");
  std::printf("%-7s %12s %18s %12s %18s\n", "batch", "cold ns", "cold solves/s",
              "warm ns", "warm solves/s");
  for (const ThroughputPoint& t : throughput) {
    std::printf("%-7d %12.0f %18.0f %12.0f %18.0f\n", t.batch, t.cold_ns,
                solves_per_sec(t.cold_ns), t.warm_ns,
                solves_per_sec(t.warm_ns));
  }
  std::printf("service drain: %d requests (%d distinct) at %.0f ns/request "
              "(%.0f requests/s)\n",
              service_requests, service_distinct, service_ns,
              solves_per_sec(service_ns));
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
