// TFT/GTFT convergence dynamics (paper §IV property 4 + GTFT design).
//
// The paper asserts that under TFT all players converge to a common
// window within a finite number of stages and that GTFT trades reaction
// speed for tolerance. This harness measures convergence stages from
// heterogeneous starts (model-driven and sim-driven engines) and sweeps
// the GTFT (β, r0) tolerance knobs — the design-choice ablation from
// DESIGN.md.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "game/repeated_game.hpp"
#include "parallel/replication.hpp"
#include "sim/adaptive_runtime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

std::vector<int> heterogeneous_starts(int n, int lo, int hi,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> w(static_cast<std::size_t>(n));
  for (auto& wi : w) wi = static_cast<int>(rng.uniform_int(lo, hi));
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "TFT / GTFT convergence",
      "paper §IV (TFT properties; GTFT tolerance parameters beta, r0)",
      "Basic access, n = 6, heterogeneous initial windows in [40, 400].");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const int n = 6;

  // 1. TFT from heterogeneous starts: converges to min in one stage in a
  //    single collision domain (full observation), both engines agreeing.
  //    The trials are independent Monte-Carlo replications (base seed
  //    100): each derives its starts and its simulator stream from the
  //    per-trial seed, so the table is identical at any --jobs.
  struct TrialRow {
    std::string starts;
    int converged = -1;
    int stable_from = 0;
    bool sim_agrees = false;
  };
  const parallel::ReplicationRunner trials({4, 100, jobs});
  const auto rows = trials.run(
      [&](std::uint64_t seed, std::size_t /*trial*/) {
        const auto starts =
            heterogeneous_starts(n, 40, 400, parallel::stream_seed(seed, 0));
        std::vector<std::unique_ptr<game::Strategy>> model_pop;
        std::vector<std::unique_ptr<game::Strategy>> sim_pop;
        TrialRow row;
        for (int w : starts) {
          model_pop.push_back(std::make_unique<game::TitForTat>(w));
          sim_pop.push_back(std::make_unique<game::TitForTat>(w));
          row.starts += std::to_string(w) + " ";
        }
        game::RepeatedGameEngine engine(game, std::move(model_pop));
        const auto model_result = engine.play(5);

        sim::SimConfig config;
        config.seed = parallel::stream_seed(seed, 1);
        sim::AdaptiveRuntime runtime(config, std::move(sim_pop), 3e5);
        const auto sim_result = runtime.play(5);

        row.converged = model_result.converged_cw.value_or(-1);
        row.stable_from = model_result.stable_from;
        row.sim_agrees = sim_result.converged_cw == model_result.converged_cw;
        return row;
      });
  util::TextTable tft({"trial", "initial windows", "converged W",
                       "stable from stage", "sim agrees"});
  for (std::size_t trial = 0; trial < rows.size(); ++trial) {
    tft.add_row({std::to_string(trial), rows[trial].starts,
                 std::to_string(rows[trial].converged),
                 std::to_string(rows[trial].stable_from),
                 rows[trial].sim_agrees ? "yes" : "no"});
  }
  std::printf("%s\n", tft.to_string().c_str());

  // 2. GTFT tolerance ablation: an undercutter switches from 76 to w_def
  //    at stage 3; the r0-stage running average delays the reaction, and
  //    beta sets how deep an undercut is tolerated at all.
  util::TextTable gtft(
      {"beta", "r0", "defector W", "reacted", "reaction stage"});
  for (double beta : {0.7, 0.9, 0.97}) {
    for (int r0 : {1, 3, 6}) {
      for (int w_def : {70, 40}) {  // mild vs strong undercut of 76
        std::vector<std::unique_ptr<game::Strategy>> pop;
        for (int i = 0; i + 1 < n; ++i) {
          pop.push_back(
              std::make_unique<game::GenerousTitForTat>(76, beta, r0));
        }
        pop.push_back(std::make_unique<game::MaliciousStrategy>(76, w_def, 3));
        game::RepeatedGameEngine engine(game, std::move(pop));
        const auto result = engine.play(14);
        int reacted_stage = -1;
        for (std::size_t k = 0; k < result.history.size(); ++k) {
          if (result.history[k].cw[0] != 76) {
            reacted_stage = static_cast<int>(k);
            break;
          }
        }
        gtft.add_row({util::fmt_double(beta, 2), std::to_string(r0),
                      std::to_string(w_def),
                      reacted_stage >= 0 ? "yes" : "no",
                      std::to_string(reacted_stage)});
      }
    }
  }
  std::printf("%s\n", gtft.to_string().c_str());

  // 3. Adaptive replication of the trial family: the same experiment as
  //    table 1 under a sequential stopping rule, streamed instead of
  //    buffered. Convergence stage barely varies across starts, so a
  //    --ci-target stops the run at the first batch boundary; the default
  //    (target 0) streams the fixed budget. Stop points and aggregates
  //    are jobs-invariant.
  const parallel::StoppingRule rule = bench::resolve_stopping(
      bench::stopping_option(argc, argv), "stable stage", 16, 4);
  const parallel::ReplicationRunner adaptive({rule.max_reps, 100, jobs});
  const auto summary = adaptive.run_sequential(
      {"converged W", "stable stage", "sim agrees"}, rule,
      [&](std::uint64_t seed, std::size_t /*trial*/) {
        const auto starts =
            heterogeneous_starts(n, 40, 400, parallel::stream_seed(seed, 0));
        std::vector<std::unique_ptr<game::Strategy>> model_pop;
        std::vector<std::unique_ptr<game::Strategy>> sim_pop;
        for (int w : starts) {
          model_pop.push_back(std::make_unique<game::TitForTat>(w));
          sim_pop.push_back(std::make_unique<game::TitForTat>(w));
        }
        game::RepeatedGameEngine engine(game, std::move(model_pop));
        const auto model_result = engine.play(5);
        sim::SimConfig config;
        config.seed = parallel::stream_seed(seed, 1);
        sim::AdaptiveRuntime runtime(config, std::move(sim_pop), 3e5);
        const auto sim_result = runtime.play(5);
        return std::vector<double>{
            static_cast<double>(model_result.converged_cw.value_or(-1)),
            static_cast<double>(model_result.stable_from),
            sim_result.converged_cw == model_result.converged_cw ? 1.0 : 0.0};
      });
  std::printf("Replicated convergence (override: --ci-target X, "
              "--ci-rel X, --max-reps N):\n%s\n%s\n",
              summary.stopping.summary().c_str(),
              util::format_metric_summaries(summary.metrics).c_str());

  std::printf(
      "Expectation: TFT converges to min(initial) with stable_from <= 1 and\n"
      "identical trajectories in both engines; GTFT ignores undercuts above\n"
      "beta*W (tolerant) and reacts to those below, later for larger r0.\n");
  return 0;
}
