// §VII.B — multi-hop quasi-optimality under mobility.
//
// Paper setup: 100 nodes, 1000 m × 1000 m, transmission range 250 m,
// random-waypoint speeds in [0, 5] m/s, RTS/CTS, 1000 s simulation. Each
// node seeds its CW with the efficient NE of its local single-hop game;
// TFT converges every window to W_m = min_i W_i (26 in the paper's run).
// Reported results: at the converged NE each node obtains at least 96% of
// its own maximal local payoff, and the global payoff is within 3% of the
// maximal global payoff over common windows. The paper also observes that
// p_hn is nearly independent of the CW (the §VI.A approximation).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "multihop/local_game.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

constexpr int kNodes = 100;
constexpr std::uint64_t kSlotsPerEpoch = 120000;
constexpr int kEpochs = 8;  // mobility epochs: positions refresh between

// Runs kEpochs × kSlotsPerEpoch slots at a common window, moving nodes
// between epochs, and returns (per-node mean payoff rates, global payoff,
// aggregate p_hn).
struct MobileRun {
  std::vector<double> node_payoff;
  double global_payoff = 0.0;
  double p_hn = 0.0;
};

MobileRun run_mobile(int w_common, std::uint64_t seed) {
  multihop::MobilityConfig mobility_config;
  mobility_config.seed = seed;
  multihop::RandomWaypointModel mobility(mobility_config, kNodes);

  multihop::MultihopConfig config;
  config.seed = seed ^ 0x5151;
  multihop::Topology topo(mobility.positions(), config.range_m);
  multihop::MultihopSimulator sim(config, topo,
                                  std::vector<int>(kNodes, w_common));

  MobileRun out;
  out.node_payoff.assign(kNodes, 0.0);
  util::RunningStats phn;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const auto r = sim.run_slots(kSlotsPerEpoch);
    for (int i = 0; i < kNodes; ++i) {
      out.node_payoff[static_cast<std::size_t>(i)] +=
          r.node[static_cast<std::size_t>(i)].payoff_rate / kEpochs;
    }
    out.global_payoff += r.global_payoff_rate / kEpochs;
    phn.add(r.aggregate_p_hn);
    // ~125 s of channel time per epoch at the multi-hop slot scale; move
    // the nodes accordingly and rebuild the neighbor graph.
    mobility.advance(125.0);
    sim.update_topology(
        multihop::Topology(mobility.positions(), config.range_m));
  }
  out.p_hn = phn.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Multi-hop quasi-optimality under random-waypoint mobility",
      "paper §VII.B (W_m = 26; local payoff >= 96% of max; global within 3%)",
      "100 nodes, 1000x1000 m, range 250 m, v in [0,5] m/s, RTS/CTS.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kRtsCts);

  // 1. Local-game seeding and TFT convergence on the initial topology.
  multihop::MobilityConfig mobility_config;
  mobility_config.seed = 99;
  multihop::RandomWaypointModel mobility(mobility_config, kNodes);
  const multihop::Topology topo0(mobility.positions(), 250.0);
  const auto seeds = multihop::local_efficient_cw(topo0, game);
  const auto conv = multihop::tft_min_convergence(topo0, seeds);
  const int w_m = conv.converged_w;
  std::size_t min_degree = kNodes;
  std::size_t max_degree = 0;
  for (std::size_t i = 0; i < topo0.node_count(); ++i) {
    min_degree = std::min(min_degree, topo0.degree(i));
    max_degree = std::max(max_degree, topo0.degree(i));
  }
  std::printf("topology: degree range [%zu, %zu], connected: %s\n",
              min_degree, max_degree, topo0.connected() ? "yes" : "no");
  std::printf("local NE seeds: min %d, max %d; TFT converged to W_m = %d in "
              "%d stages (paper run: 26)\n\n",
              *std::min_element(seeds.begin(), seeds.end()),
              *std::max_element(seeds.begin(), seeds.end()), w_m, conv.stages);

  // 2. Sweep common windows around W_m under mobility.
  std::vector<int> grid;
  for (double f : {0.4, 0.6, 0.8, 1.0, 1.4, 2.0, 3.0, 4.5}) {
    const int w = std::max(1, static_cast<int>(w_m * f + 0.5));
    if (grid.empty() || grid.back() != w) grid.push_back(w);
  }

  // Each grid point is a self-contained mobile run with a fixed seed;
  // fan across --jobs and build the table in grid order afterwards.
  std::vector<MobileRun> runs(grid.size());
  bench::sweep(grid.size(), jobs, [&](std::size_t gi) {
    runs[gi] = run_mobile(grid[gi], 1234);
  });
  util::TextTable table({"W", "global payoff (1/us)", "p_hn"});
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    table.add_row({std::to_string(grid[gi]),
                   util::fmt_double(runs[gi].global_payoff * 1e3, 4) + "e-3",
                   util::fmt_double(runs[gi].p_hn, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // 3. Quasi-optimality metrics at W_m.
  const std::size_t ne_index = static_cast<std::size_t>(
      std::find(grid.begin(), grid.end(), w_m) - grid.begin());
  const MobileRun& at_ne = runs[ne_index];

  double best_global = 0.0;
  for (const auto& run : runs) {
    best_global = std::max(best_global, run.global_payoff);
  }
  std::printf("global payoff at W_m / max over sweep: %s (paper: >= 97%%)\n",
              util::fmt_percent(at_ne.global_payoff / best_global, 1).c_str());

  // Per-node: fraction of each node's own best payoff across the sweep.
  double worst_fraction = 1.0;
  util::RunningStats fractions;
  for (int i = 0; i < kNodes; ++i) {
    double best = 0.0;
    for (const auto& run : runs) {
      best = std::max(best, run.node_payoff[static_cast<std::size_t>(i)]);
    }
    if (best <= 0.0) continue;  // isolated node in every epoch
    const double frac =
        at_ne.node_payoff[static_cast<std::size_t>(i)] / best;
    fractions.add(frac);
    worst_fraction = std::min(worst_fraction, frac);
  }
  std::printf("per-node payoff at W_m / own max: mean %s, min %s "
              "(paper: every node >= 96%%)\n",
              util::fmt_percent(fractions.mean(), 1).c_str(),
              util::fmt_percent(worst_fraction, 1).c_str());

  // 4. §VI.A approximation: p_hn spread across the sweep.
  double phn_min = 1.0;
  double phn_max = 0.0;
  for (const auto& run : runs) {
    phn_min = std::min(phn_min, run.p_hn);
    phn_max = std::max(phn_max, run.p_hn);
  }
  std::printf("p_hn across CW sweep: [%.3f, %.3f] (spread %.3f). The\n"
              "Sec. VI.A independence approximation is coarse — p_hn drifts\n"
              "with CW — but the payoff plateau makes the induced error in\n"
              "the local-NE seeds inconsequential (see the global ratio).\n",
              phn_min, phn_max, phn_max - phn_min);
  std::printf(
      "\nExpectation: global ratio near 1 (quasi-optimal NE); per-node mean\n"
      "fraction >= ~90%% (noisy mobile sim vs the paper's 96%% point\n"
      "estimate); the flat payoff table is the RTS/CTS near-independence\n"
      "the paper reports in Sec. VII.B.\n");
  return 0;
}
