// §IX extension — the rate-control game.
//
// The paper's closing claim: the framework extends to "other selfish
// behaviors such as rate control by redefining the proper utility
// function". This harness plays that game (payload size as the strategic
// variable, CW pinned at the MAC-game NE) and reports:
//   * the race-to-max regime at BER = 0 (the Tan-Guttag inefficiency [7]
//     the paper cites);
//   * interior social optima and selfish equilibria for BER > 0, with the
//     selfish frame size sitting above the social optimum (externalized
//     collision cost) in basic mode;
//   * RTS/CTS removing the length externality (collisions never carry
//     data), which shrinks the gap.
#include <cstdio>

#include "bench_common.hpp"
#include "game/rate_game.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Rate-control game: selfish payload sizing",
      "paper §IX (framework extension) / Tan & Guttag [7] contrast",
      "n = 10, CW fixed at the MAC game's W_c*; payloads in bits.");

  util::TextTable table({"mode", "BER", "L social opt", "L selfish NE",
                         "gap %", "welfare at NE vs opt %"});
  for (auto mode : {phy::AccessMode::kBasic, phy::AccessMode::kRtsCts}) {
    for (double ber : {0.0, 1e-6, 1e-5, 5e-5, 2e-4}) {
      game::RateGameConfig config;
      config.mode = mode;
      config.bit_error_rate = ber;
      const game::RateGame rate_game(config);
      const double l_social = rate_game.efficient_payload();
      const double l_selfish = rate_game.equilibrium_payload();
      const double u_social = rate_game.homogeneous_utility_rate(l_social);
      const double u_selfish = rate_game.homogeneous_utility_rate(l_selfish);
      table.add_row(
          {to_string(mode), util::fmt_double(ber * 1e6, 1) + "e-6",
           util::fmt_double(l_social, 0), util::fmt_double(l_selfish, 0),
           util::fmt_double((l_selfish - l_social) / l_social * 100.0, 1),
           util::fmt_double(u_selfish / u_social * 100.0, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Externality check: how much one jumbo sender hurts a bystander.
  util::TextTable ext({"mode", "bystander utility drop from one jumbo %"});
  for (auto mode : {phy::AccessMode::kBasic, phy::AccessMode::kRtsCts}) {
    game::RateGameConfig config;
    config.mode = mode;
    config.bit_error_rate = 1e-5;
    const game::RateGame rate_game(config);
    std::vector<double> moderate(10, 8184.0);
    std::vector<double> jumbo = moderate;
    jumbo[0] = 60000.0;
    const double before = rate_game.utility_rates(moderate)[1];
    const double after = rate_game.utility_rates(jumbo)[1];
    ext.add_row({to_string(mode),
                 util::fmt_double((before - after) / before * 100.0, 1)});
  }
  std::printf("%s\n", ext.to_string().c_str());
  std::printf(
      "Expectation: BER = 0 races to the configured maximum payload in both\n"
      "modes (no gap — the Tan-Guttag regime); BER > 0 creates interior\n"
      "social optima that shrink as BER grows, while the selfish NE stays\n"
      "far above them (at moderate BER it still pins the cap), burning\n"
      "20-40%% of the achievable welfare. The jumbo externality is only\n"
      "slightly weaker under RTS/CTS: the collision externality disappears\n"
      "but the clock-share externality (long success slots slow everyone's\n"
      "schedule) remains and dominates.\n");
  return 0;
}
