// Ablation — channel realism: packet errors, capture, backoff laws.
//
// The paper assumes an ideal channel (no noise, no capture) and BEB.
// This harness quantifies how each relaxation moves the headline objects:
// the efficient NE window, its utility, throughput, and fairness.
#include <cstdio>
#include <vector>

#include "analytical/utility.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/optimize.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

int exact_ne(const phy::Parameters& params, int n) {
  const auto r = util::ternary_int_max(
      [&](std::int64_t w) {
        return analytical::homogeneous_utility_rate(
            static_cast<double>(w), n, params, phy::AccessMode::kBasic);
      },
      1, params.w_max);
  return static_cast<int>(r.x);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Channel-realism ablations: PER, capture, backoff law",
      "paper §III idealizations relaxed one axis at a time",
      "Basic access, n = 10 unless noted.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters base = phy::Parameters::paper();

  // Every sweep point below is a self-contained experiment with its own
  // fixed seed; each table fans its points across --jobs into per-index
  // row slots and prints them in sweep order, so output is byte-identical
  // for any jobs value.

  // 1. PER sweep: NE window and achievable utility.
  util::TextTable per_table({"PER", "W_c*", "u at W_c*", "vs clean %"});
  const double u_clean = analytical::homogeneous_utility_rate(
      exact_ne(base, 10), 10, base, phy::AccessMode::kBasic);
  const std::vector<double> pers{0.0, 0.05, 0.15, 0.3, 0.5};
  std::vector<std::vector<std::string>> per_rows(pers.size());
  bench::sweep(pers.size(), jobs, [&](std::size_t k) {
    phy::Parameters params = base;
    params.packet_error_rate = pers[k];
    const int w_star = exact_ne(params, 10);
    const double u = analytical::homogeneous_utility_rate(
        w_star, 10, params, phy::AccessMode::kBasic);
    per_rows[k] = {util::fmt_double(pers[k], 2), std::to_string(w_star),
                   util::fmt_double(u * 1e6, 3) + "e-6",
                   util::fmt_double(u / u_clean * 100.0, 1)};
  });
  for (auto& row : per_rows) per_table.add_row(std::move(row));
  std::printf("%s\n", per_table.to_string().c_str());

  // 2. Capture sweep: throughput and the aggressor's premium (one node at
  //    W/8 among conformers at the NE window).
  const int w_star = exact_ne(base, 10);
  util::TextTable cap_table({"capture p", "throughput", "aggr. premium x"});
  const std::vector<double> captures{0.0, 0.25, 0.5, 0.9};
  std::vector<std::vector<std::string>> cap_rows(captures.size());
  bench::sweep(captures.size(), jobs, [&](std::size_t k) {
    sim::SimConfig config;
    config.seed = 77;
    config.capture_probability = captures[k];
    std::vector<int> profile(10, w_star);
    profile[0] = std::max(1, w_star / 8);
    sim::Simulator sim(config, profile);
    const auto r = sim.run_slots(300000);
    cap_rows[k] = {util::fmt_double(captures[k], 2),
                   util::fmt_double(r.throughput, 3),
                   util::fmt_double(r.payoff_rate[0] / r.payoff_rate[1], 2)};
  });
  for (auto& row : cap_rows) cap_table.add_row(std::move(row));
  std::printf("%s\n", cap_table.to_string().c_str());

  // 3. Backoff-law fairness at two horizons.
  util::TextTable law_table({"policy", "Jain (500 slots)",
                             "Jain (20k slots)", "throughput"});
  const std::vector<sim::BackoffPolicy> policies{
      sim::BackoffPolicy::kBinaryExponential, sim::BackoffPolicy::kMild,
      sim::BackoffPolicy::kConstant};
  std::vector<std::vector<std::string>> law_rows(policies.size());
  bench::sweep(policies.size(), jobs, [&](std::size_t k) {
    const sim::BackoffPolicy policy = policies[k];
    auto jain_at = [&](std::uint64_t slots) {
      util::RunningStats acc;
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        sim::SimConfig config;
        config.seed = 200 + seed;
        config.backoff_policy = policy;
        sim::Simulator sim(config, std::vector<int>(10, 16));
        const auto r = sim.run_slots(slots);
        std::vector<double> succ;
        for (const auto& node : r.node) {
          succ.push_back(static_cast<double>(node.successes));
        }
        acc.add(util::jain_fairness(succ));
      }
      return acc.mean();
    };
    sim::SimConfig config;
    config.seed = 300;
    config.backoff_policy = policy;
    sim::Simulator sim(config, std::vector<int>(10, 16));
    const char* name = policy == sim::BackoffPolicy::kBinaryExponential
                           ? "BEB (802.11)"
                           : policy == sim::BackoffPolicy::kMild
                                 ? "MILD (MACAW)"
                                 : "constant";
    law_rows[k] = {name, util::fmt_double(jain_at(500), 3),
                   util::fmt_double(jain_at(20000), 3),
                   util::fmt_double(sim.run_slots(100000).throughput, 3)};
  });
  for (auto& row : law_rows) law_table.add_row(std::move(row));
  std::printf("%s\n", law_table.to_string().c_str());
  std::printf(
      "Expectation: PER drags W_c* *down* (escalation suppresses tau; a\n"
      "smaller window restores the channel-optimal attempt rate) and costs\n"
      "utility roughly linearly; capture raises throughput but *softens*\n"
      "the aggressor's premium (uniform capture shares contested slots);\n"
      "MILD is fairer than BEB at short horizons and less fair at long\n"
      "ones, with comparable throughput.\n");
  return 0;
}
