// Enforcement invasion matrix: detection → calibrated reaction →
// rehabilitation, measured end to end.
//
// PR 5's tournament left a gap: contrite-tft (and forgiving-gtft) are
// INVADED by the relentless short-sighted deviant — forgiveness that
// rescues honest populations from observation noise also lets a deviant
// farm the drift-back. This harness measures whether the enforcement
// closed loop (sim::OnlineDetector SPRT → game::ReactionPolicy calibrated
// jamming episodes → rehabilitation) closes it:
//
//   1. the headline flip — PR 5's invasion verdicts (Basic access, n = 5,
//      300 stages) with enforcement off vs on;
//   2. a deviant × noise × monitor-filter grid (RTS/CTS, n = 6): flag
//      latency, episode accounting, and the deviant's payoff against the
//      enforced all-compliant counterfactual on the same fault stream;
//   3. false-flag calibration — a population that actually holds the
//      agreement, replicated, against the 1.5 × significance bound;
//   4. one grid cell replicated across fault trajectories under
//      sequential stopping;
//   5. multihop containment — the flooding protocol on a 6-node chain
//      with a pinned deviant, vs the TFT contagion baseline.
//
// Every cell runs under a fixed per-cell seed, fanned across --jobs and
// reduced in grid order — stdout is byte-identical for any jobs value (the
// acceptance check diffs --jobs 1 against --jobs 4, so nothing here may
// print the job count). Also writes BENCH_enforcement.json (--out PATH to
// move it): flag latency in stages and deviant payoff delta vs honest.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "game/equilibrium.hpp"
#include "game/reaction.hpp"
#include "game/repeated_game.hpp"
#include "game/stage_game.hpp"
#include "game/tournament.hpp"
#include "multihop/adaptive.hpp"
#include "multihop/multihop_simulator.hpp"
#include "parallel/replication.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

constexpr int kPlayers = 6;     // RTS/CTS grid network size
constexpr int kStages = 200;    // grid horizon
constexpr std::uint64_t kBaseSeed = 0xe4f0;

// ---------------------------------------------------------------------
// Grid machinery: one enforced repeated game under a given noise level.

game::ReactionConfig reaction_config(int w_agreed, bool monitor_filter) {
  game::ReactionConfig rc;
  rc.w_agreed = w_agreed;
  if (monitor_filter) {
    rc.monitor_filter.kind = game::FilterKind::kMedian;
    rc.monitor_filter.window = 3;
  }
  return rc;
}

game::RepeatedGameResult play(
    const game::StageGame& game,
    std::vector<std::unique_ptr<game::Strategy>> pop,
    const game::ReactionConfig* rc, double noise, std::uint64_t seed) {
  game::RepeatedGameEngine engine(game, std::move(pop));
  if (rc != nullptr) {
    engine.set_enforcement(*rc);
    // The recommended stack pairs enforcement with the PR 5 player-side
    // median filter, so compliant reactions don't chase phantom reads.
    game::ObservationFilterConfig fc;
    fc.kind = game::FilterKind::kMedian;
    fc.window = 3;
    engine.set_observation_filter(fc);
  }
  if (noise <= 0.0) return engine.play(kStages);
  fault::FaultPlan plan;
  plan.observation.noise_probability = noise;
  plan.observation.noise_magnitude = 4;
  fault::FaultInjector injector(plan, kPlayers, seed);
  return engine.play(kStages, &injector);
}

std::unique_ptr<game::Strategy> make_deviant(int kind, int w_coop) {
  if (kind == 0) {
    return std::make_unique<game::ShortSightedStrategy>(
        std::max(1, w_coop / 4));
  }
  return std::make_unique<game::MaliciousStrategy>(w_coop, 2, 3);
}

const char* deviant_name(int kind) {
  return kind == 0 ? "short-sighted" : "malicious";
}

struct GridCell {
  int deviant = 0;            ///< 0 short-sighted, 1 malicious
  double noise = 0.0;
  bool monitor_filter = false;
  game::EnforcementReport report;
  double deviant_payoff = 0.0;       ///< deviant's total utility, enforced
  double counterfactual = 0.0;       ///< member of enforced honest pop
  double delta = 0.0;                ///< deviant_payoff − counterfactual
};

GridCell run_grid_cell(const game::StageGame& game, int w_coop, int deviant,
                       double noise, bool monitor_filter,
                       std::uint64_t seed) {
  GridCell cell;
  cell.deviant = deviant;
  cell.noise = noise;
  cell.monitor_filter = monitor_filter;
  const game::ReactionConfig rc = reaction_config(w_coop, monitor_filter);

  auto pop = game::make_contrite_population(kPlayers - 1, w_coop, 3);
  pop.push_back(make_deviant(deviant, w_coop));
  const auto enforced = play(game, std::move(pop), &rc, noise, seed);
  cell.report = enforced.enforcement;
  cell.deviant_payoff = enforced.total_utility.back();

  // The §V.D counterfactual: the same protocol, the same fault stream,
  // but the deviant slot plays compliantly. Deviating is unprofitable iff
  // the deviant earned less than it would have by just cooperating.
  const auto honest = play(
      game, game::make_contrite_population(kPlayers, w_coop, 3), &rc, noise,
      seed);
  double sum = 0.0;
  for (const double u : honest.total_utility) sum += u;
  cell.counterfactual = sum / static_cast<double>(kPlayers);
  cell.delta = cell.deviant_payoff - cell.counterfactual;
  return cell;
}

struct FlagCount {
  double noise = 0.0;
  int episodes = 0;
  int runs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Enforcement: online detection -> calibrated reaction -> rehabilitation",
      "robustness extension of paper §V.C/§V.D (detection + punishment)",
      "SPRT monitor flags deviants; compliant players serve gain-calibrated\n"
      "jamming episodes and rehabilitate the offender. Measures the PR 5\n"
      "invasion flip, flag latency, deviant profitability, false flags,\n"
      "and multihop containment. Deterministic per-cell seeds.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  // Deliberately no jobs line: output must be byte-identical at any --jobs.
  std::string out_path = "BENCH_enforcement.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[i + 1];
    }
  }

  const phy::Parameters params = phy::Parameters::paper();

  // -------------------------------------------------------------------
  // 1. Headline: does enforcement flip PR 5's invasion verdicts?
  //    Same setting as bench_tournament: Basic access, n = 5, 300 stages.
  const game::StageGame basic(params, phy::AccessMode::kBasic);
  const int n5 = 5;
  const int w5 = game::EquilibriumFinder(basic, n5).efficient_cw();
  const auto residents = game::enforcement_roster(basic, n5, w5);
  const auto deviants = game::deviant_roster(w5);

  game::Tournament unenforced(basic, n5, 300, jobs);
  game::Tournament enforced5(basic, n5, 300, jobs);
  enforced5.set_enforcement(reaction_config(w5, false));

  struct Flip {
    bool off = false;
    bool on = false;
  };
  std::vector<Flip> flips(residents.size() * deviants.size());
  bench::sweep(flips.size(), jobs, [&](std::size_t k) {
    const auto& res = residents[k / deviants.size()];
    const auto& dev = deviants[k % deviants.size()];
    flips[k].off = unenforced.resists_invasion(res, dev);
    flips[k].on = enforced5.resists_invasion(res, dev);
  });

  std::printf("headline: PR 5 invasion verdicts, Basic access, n = %d, "
              "W* = %d, 300 stages\n", n5, w5);
  util::TextTable headline(
      {"population \\ mutant", "vs " + deviants[0].name + " (off -> on)",
       "vs " + deviants[1].name + " (off -> on)"});
  for (std::size_t i = 0; i < residents.size(); ++i) {
    std::vector<std::string> row{residents[i].name};
    for (std::size_t j = 0; j < deviants.size(); ++j) {
      const Flip& f = flips[i * deviants.size() + j];
      const std::string off = f.off ? "resists" : "INVADED";
      const std::string on = f.on ? "resists" : "INVADED";
      row.push_back(off + " -> " + on + (f.on && !f.off ? "  (flip)" : ""));
    }
    headline.add_row(std::move(row));
  }
  std::printf("%s\n", headline.to_string().c_str());
  const game::MixOutcome sample =
      enforced5.play_mix(residents[2], deviants[0], n5 - 1);
  std::printf("sample enforced mix (%s vs %s): %s\n\n",
              residents[2].name.c_str(), deviants[0].name.c_str(),
              sample.enforcement.summary().c_str());

  // -------------------------------------------------------------------
  // 2. The grid: deviant type x observation noise x monitor filter.
  const game::StageGame rtscts(params, phy::AccessMode::kRtsCts);
  const int w_star = game::EquilibriumFinder(rtscts, kPlayers).efficient_cw();
  const std::vector<double> noise_levels{0.0, 0.05, 0.15};
  const std::vector<bool> filter_variants{false, true};

  std::vector<GridCell> cells(2 * noise_levels.size() *
                              filter_variants.size());
  bench::sweep(cells.size(), jobs, [&](std::size_t k) {
    const int deviant = static_cast<int>(k / (noise_levels.size() *
                                              filter_variants.size()));
    const std::size_t rest =
        k % (noise_levels.size() * filter_variants.size());
    const double noise = noise_levels[rest / filter_variants.size()];
    const bool filtered = filter_variants[rest % filter_variants.size()];
    cells[k] = run_grid_cell(rtscts, w_star, deviant, noise, filtered,
                             parallel::stream_seed(kBaseSeed, k));
  });

  std::printf("invasion grid: %d contrite(3) residents + 1 deviant, RTS/CTS, "
              "n = %d, W* = %d, %d stages,\nplayer-side median(3) filter; "
              "payoffs are total utility over the run, the counterfactual\n"
              "is a member of the enforced all-compliant population on the "
              "same fault stream:\n", kPlayers - 1, kPlayers, w_star, kStages);
  util::TextTable grid({"deviant", "noise", "monitor", "first flag",
                        "episodes", "punished", "rehabs", "deviant payoff",
                        "counterfactual", "delta", "verdict"});
  for (const GridCell& cell : cells) {
    grid.add_row(
        {deviant_name(cell.deviant), util::fmt_double(cell.noise, 2),
         cell.monitor_filter ? "median(3)" : "raw",
         std::to_string(cell.report.first_flag_stage),
         std::to_string(cell.report.episodes),
         std::to_string(cell.report.punished_stages),
         std::to_string(cell.report.rehabilitations),
         util::fmt_double(cell.deviant_payoff, 1),
         util::fmt_double(cell.counterfactual, 1),
         util::fmt_double(cell.delta, 1),
         cell.delta < 0.0 ? "unprofitable" : "PROFITABLE"});
  }
  std::printf("%s\n", grid.to_string().c_str());

  // The gap the loop closes: the same deviant, no enforcement.
  {
    auto pop = game::make_contrite_population(kPlayers - 1, w_star, 3);
    pop.push_back(make_deviant(0, w_star));
    const auto open = play(rtscts, std::move(pop), nullptr, 0.0, 0);
    std::printf("unenforced contrast (short-sighted vs contrite, no noise): "
                "deviant %.1f vs resident %.1f — the PR 5 invasion.\n\n",
                open.total_utility.back(), open.total_utility.front());
  }

  // -------------------------------------------------------------------
  // 3. False-flag calibration: the SPRT's H0, replicated.
  const double alpha = game::ReactionConfig{}.detector.significance;
  const int reps = 20;
  std::vector<int> flag_slots(noise_levels.size() *
                              static_cast<std::size_t>(reps));
  bench::sweep(flag_slots.size(), jobs, [&](std::size_t k) {
    const double noise = noise_levels[k / static_cast<std::size_t>(reps)];
    const game::ReactionConfig rc = reaction_config(w_star, false);
    std::vector<std::unique_ptr<game::Strategy>> pop;
    for (int i = 0; i < kPlayers; ++i) {
      pop.push_back(std::make_unique<game::ConstantStrategy>(w_star));
    }
    const auto result = play(rtscts, std::move(pop), &rc, noise,
                             parallel::stream_seed(kBaseSeed ^ 0xff, k));
    flag_slots[k] = result.enforcement.episodes;
  });
  std::vector<FlagCount> flag_counts;
  for (std::size_t a = 0; a < noise_levels.size(); ++a) {
    FlagCount fc;
    fc.noise = noise_levels[a];
    fc.runs = reps;
    for (int r = 0; r < reps; ++r) {
      fc.episodes += flag_slots[a * static_cast<std::size_t>(reps) +
                                static_cast<std::size_t>(r)];
    }
    flag_counts.push_back(fc);
  }
  const double bound = 1.5 * alpha * reps * kPlayers;
  std::printf("false-flag calibration: %d constant-W* players (true H0), "
              "%d reps, bound = 1.5 x alpha x reps x players = %.1f:\n",
              kPlayers, reps, bound);
  util::TextTable fp({"noise", "false-flag episodes", "bound", "verdict"});
  for (const FlagCount& fc : flag_counts) {
    fp.add_row({util::fmt_double(fc.noise, 2), std::to_string(fc.episodes),
                util::fmt_double(bound, 1),
                static_cast<double>(fc.episodes) <= bound ? "ok" : "OVER"});
  }
  std::printf("%s", fp.to_string().c_str());
  std::printf("(magnitude-4 noise around W* implies a tau below the SPRT's "
              "break-even rate, so the\nmeasured count is structurally 0 — "
              "the bound is the property, not the estimate.)\n\n");

  // -------------------------------------------------------------------
  // 4. One grid cell replicated across fault trajectories under
  //    sequential stopping (short-sighted, 5% noise, raw monitor).
  {
    const parallel::StoppingRule rule = bench::resolve_stopping(
        bench::stopping_option(argc, argv), "deviant delta", 6, 3);
    const parallel::ReplicationRunner runner(
        {rule.max_reps, kBaseSeed ^ 0x5eedULL, jobs});
    const auto summary = runner.run_sequential(
        {"deviant payoff", "counterfactual", "deviant delta",
         "first flag stage"},
        rule, [&](std::uint64_t seed, std::size_t /*index*/) {
          const GridCell cell =
              run_grid_cell(rtscts, w_star, 0, 0.05, false, seed);
          return std::vector<double>{
              cell.deviant_payoff, cell.counterfactual, cell.delta,
              static_cast<double>(cell.report.first_flag_stage)};
        });
    std::printf("replicated cell (short-sighted, noise 0.05, raw monitor; "
                "override: --ci-target X, --ci-rel X, --max-reps N):\n%s\n%s\n",
                summary.stopping.summary().c_str(),
                util::format_metric_summaries(summary.metrics).c_str());
  }

  // -------------------------------------------------------------------
  // 5. Multihop containment: flooding protocol vs TFT contagion on a
  //    6-node chain with node 2 pinned at w = 2, outside the protocol.
  multihop::MultihopTftResult mh_tft;
  multihop::MultihopTftResult mh_enf;
  double dev_tft = 0.0;
  double dev_enf = 0.0;
  {
    std::vector<multihop::Vec2> pos;
    for (int i = 0; i < 6; ++i) pos.push_back({i * 200.0, 0.0});
    const multihop::Topology topo(pos, 250.0);
    multihop::MultihopConfig mc;
    mc.seed = 9;
    const std::vector<int> seed_windows{32, 32, 2, 32, 32, 32};
    multihop::MultihopTftConfig tc;
    tc.slots_per_stage = 15000;
    tc.stages = 24;

    multihop::MultihopSimulator tft_sim(mc, topo, seed_windows);
    mh_tft = play_multihop_tft(tft_sim, nullptr, tc);
    multihop::MultihopSimulator enf_sim(mc, topo, seed_windows);
    multihop::MultihopEnforcementConfig ec;
    ec.compliant = {1, 1, 0, 1, 1, 1};
    mh_enf = play_multihop_enforced(enf_sim, nullptr, tc, ec);
    for (int k = 0; k < tc.stages; ++k) {
      dev_tft += mh_tft.stages[static_cast<std::size_t>(k)].payoff[2];
      dev_enf += mh_enf.stages[static_cast<std::size_t>(k)].payoff[2];
    }
    std::printf("multihop containment (6-node chain, node 2 pinned at w = 2, "
                "%d stages x %llu slots):\n"
                "  graph-local TFT : converged W = %s (contagion — the whole "
                "chain matches down)\n"
                "  enforcement     : flags=%d episodes=%d punished=%d "
                "rehabs=%d; non-neighbors hold W = 32\n"
                "  deviant payoff  : %.3e enforced vs %.3e under TFT "
                "(%s)\n\n",
                tc.stages,
                static_cast<unsigned long long>(tc.slots_per_stage),
                mh_tft.converged_cw ? std::to_string(*mh_tft.converged_cw)
                                          .c_str()
                                    : "mixed",
                mh_enf.flags_raised, mh_enf.punishment_episodes,
                mh_enf.punished_stages, mh_enf.rehabilitations, dev_enf,
                dev_tft, dev_enf < dev_tft ? "unprofitable" : "PROFITABLE");
  }

  // -------------------------------------------------------------------
  // JSON artifact: flag latency and deviant payoff delta vs honest.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"enforcement invasion matrix\",\n");
  std::fprintf(out,
               "  \"setting\": {\"access\": \"rts-cts\", \"players\": %d, "
               "\"w_star\": %d, \"stages\": %d},\n",
               kPlayers, w_star, kStages);
  std::fprintf(out, "  \"headline_flips\": [\n");
  for (std::size_t i = 0; i < residents.size(); ++i) {
    for (std::size_t j = 0; j < deviants.size(); ++j) {
      const Flip& f = flips[i * deviants.size() + j];
      std::fprintf(out,
                   "    {\"resident\": \"%s\", \"mutant\": \"%s\", "
                   "\"resists_unenforced\": %s, \"resists_enforced\": %s}%s\n",
                   residents[i].name.c_str(), deviants[j].name.c_str(),
                   f.off ? "true" : "false", f.on ? "true" : "false",
                   i + 1 < residents.size() || j + 1 < deviants.size() ? ","
                                                                       : "");
    }
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"grid\": [\n");
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const GridCell& c = cells[k];
    std::fprintf(out,
                 "    {\"deviant\": \"%s\", \"noise\": %.2f, "
                 "\"monitor_filter\": %s, \"flag_latency_stages\": %d, "
                 "\"episodes\": %d, \"punished_stages\": %d, "
                 "\"rehabilitations\": %d, \"deviant_payoff\": %.3f, "
                 "\"honest_counterfactual\": %.3f, \"payoff_delta\": %.3f, "
                 "\"unprofitable\": %s}%s\n",
                 deviant_name(c.deviant), c.noise,
                 c.monitor_filter ? "true" : "false",
                 c.report.first_flag_stage, c.report.episodes,
                 c.report.punished_stages, c.report.rehabilitations,
                 c.deviant_payoff, c.counterfactual, c.delta,
                 c.delta < 0.0 ? "true" : "false",
                 k + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"false_flags\": [\n");
  for (std::size_t a = 0; a < flag_counts.size(); ++a) {
    std::fprintf(out,
                 "    {\"noise\": %.2f, \"episodes\": %d, \"runs\": %d, "
                 "\"bound\": %.1f}%s\n",
                 flag_counts[a].noise, flag_counts[a].episodes,
                 flag_counts[a].runs, bound,
                 a + 1 < flag_counts.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"multihop\": {\"deviant_payoff_enforced\": %.6e, "
               "\"deviant_payoff_tft\": %.6e, \"flags\": %d, "
               "\"episodes\": %d, \"punished_stages\": %d, "
               "\"rehabilitations\": %d}\n",
               dev_enf, dev_tft, mh_enf.flags_raised,
               mh_enf.punishment_episodes, mh_enf.punished_stages,
               mh_enf.rehabilitations);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n\n", out_path.c_str());

  std::printf(
      "Expectation: the headline table flips contrite-tft and\n"
      "forgiving-gtft from INVADED to resists against both deviants —\n"
      "enforcement supplies the deterrence their forgiveness gave up —\n"
      "while tft and gtft resist either way. In the grid every deviant\n"
      "row is flagged within a few stages and lands strictly below the\n"
      "honest counterfactual (delta < 0) at every noise level; the\n"
      "false-flag table stays at zero episodes because magnitude-4 noise\n"
      "cannot push a compliant node's implied tau past the SPRT's\n"
      "break-even rate. Multihop enforcement contains the deviation to\n"
      "the offender's neighborhood (no TFT contagion) and still makes\n"
      "deviating pay worse than the contagion it exploits.\n");
  return 0;
}
