// Replication-engine scaling: wall-clock vs --jobs on a fixed batch.
//
// Runs the same Monte-Carlo batch (12 replications of a 10-node saturated
// DCF simulation) at jobs = 1 / 2 / 4 (and the --jobs/SMAC_JOBS value if
// larger), times each sweep, and cross-checks that every aggregated
// metric is bit-identical to the serial run — the determinism contract of
// src/parallel/replication.hpp, measured rather than asserted. Build with
// -DCMAKE_BUILD_TYPE=Release before reading the speedup column; recorded
// results live in bench/PARALLEL_SPEEDUP.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

double run_batch_ms(std::size_t jobs, sim::SimBatch& batch_out) {
  sim::SimConfig config;
  config.seed = 42;
  const std::vector<int> profile(10, 128);
  const auto t0 = std::chrono::steady_clock::now();
  batch_out = sim::run_replicated(config, profile, 30000, 12, jobs);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool identical_metrics(const sim::SimBatch& a, const sim::SimBatch& b) {
  if (a.metrics.size() != b.metrics.size()) return false;
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    if (a.metrics[m].mean != b.metrics[m].mean ||
        a.metrics[m].stddev != b.metrics[m].stddev ||
        a.metrics[m].ci95 != b.metrics[m].ci95 ||
        a.metrics[m].min != b.metrics[m].min ||
        a.metrics[m].max != b.metrics[m].max) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Parallel replication scaling",
      "engine check (no paper artifact): ReplicationRunner determinism "
      "and speedup",
      "12 replications x 30k slots, 10 saturated nodes, W = 128, basic.");
  const std::size_t jobs_arg = bench::jobs_option(argc, argv);
  std::printf("hardware threads available: %zu\n\n",
              parallel::ThreadPool::default_jobs());

  std::vector<std::size_t> sweep{1, 2, 4};
  if (std::find(sweep.begin(), sweep.end(), jobs_arg) == sweep.end()) {
    sweep.push_back(jobs_arg);
  }

  sim::SimBatch serial;
  const double serial_ms = run_batch_ms(1, serial);

  util::TextTable table(
      {"jobs", "wall (ms)", "speedup vs jobs=1", "aggregates bit-identical"});
  table.add_row({"1", util::fmt_double(serial_ms, 1), "1.00", "-"});
  for (std::size_t jobs : sweep) {
    if (jobs == 1) continue;
    sim::SimBatch batch;
    const double ms = run_batch_ms(jobs, batch);
    table.add_row({std::to_string(jobs), util::fmt_double(ms, 1),
                   util::fmt_double(serial_ms / ms, 2),
                   identical_metrics(serial, batch) ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n",
              util::format_metric_summaries(serial.metrics, 6).c_str());
  std::printf(
      "Expectation: the aggregate column is always 'yes' (per-stream\n"
      "seeding + index-ordered reduction make results independent of\n"
      "scheduling); speedup approaches min(jobs, cores) once each\n"
      "replication is long enough to amortize thread startup. On a\n"
      "single-core host every speedup is ~1.0 by construction.\n");
  return 0;
}
