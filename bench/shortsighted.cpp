// §V.D — impact of short-sighted players.
//
// One deviator with discount δ_s plays W_s < W_c* while the other n−1
// TFT players need m stages to retaliate; afterwards everyone sits on
// W_s. The paper shows deviation pays only for small δ_s and that the
// network as a whole loses. This harness reports, over a δ_s grid, the
// deviator's best W_s, its relative gain, and the social-welfare damage;
// plus the per-W_s critical discount thresholds.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "game/deviation.hpp"
#include "game/equilibrium.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Short-sighted deviation analysis",
      "paper §V.D (deviation pays iff the deviator discounts heavily)",
      "Basic access, n = 5, W_c* from Table II, TFT reaction lag m = 1.");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const int n = 5;
  const game::EquilibriumFinder finder(game, n);
  const int w_star = finder.efficient_cw();
  std::printf("W_c* = %d\n\n", w_star);

  // 1. Best deviation vs the deviator's discount factor.
  util::TextTable by_delta({"delta_s", "best W_s", "gain %", "profitable",
                            "welfare after TFT contagion %"});
  for (double delta : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.9999}) {
    const auto best =
        game::best_shortsighted_deviation(game, n, w_star, delta, 1);
    const double gain_pct =
        best.outcome.u_conform != 0.0
            ? best.outcome.gain / std::abs(best.outcome.u_conform) * 100.0
            : 0.0;
    const double welfare_pct =
        game::malicious_welfare_ratio(game, n, w_star, best.w_s) * 100.0;
    by_delta.add_row({util::fmt_double(delta, 4), std::to_string(best.w_s),
                      util::fmt_double(gain_pct, 2),
                      best.outcome.profitable ? "yes" : "no",
                      util::fmt_double(welfare_pct, 1)});
  }
  std::printf("%s\n", by_delta.to_string().c_str());

  // 2. Critical discount per deviation window and reaction lag.
  util::TextTable crit({"W_s", "delta* (m=1)", "delta* (m=2)",
                        "delta* (m=5)"});
  for (int w_s : {w_star / 8, w_star / 4, w_star / 2, w_star * 3 / 4,
                  w_star - 1}) {
    crit.add_row({std::to_string(w_s),
                  util::fmt_double(
                      game::critical_discount(game, n, w_star, w_s, 1), 4),
                  util::fmt_double(
                      game::critical_discount(game, n, w_star, w_s, 2), 4),
                  util::fmt_double(
                      game::critical_discount(game, n, w_star, w_s, 5), 4)});
  }
  std::printf("%s\n", crit.to_string().c_str());
  std::printf(
      "Expectation: small delta_s -> aggressive deviation (W_s near 1) with\n"
      "large gains and degraded welfare; as delta_s -> 1 the best deviation\n"
      "retreats into the NE band [W_c0, W_c*] and its gain vanishes — the\n"
      "paper's conclusion that long-sighted selfishness is harmless.\n"
      "delta* rises with W_s -> W_c* (marginal deviations are cheap) and\n"
      "with slower retaliation.\n");
  return 0;
}
