// Substrate validation against Bianchi (2000) — the model the paper
// builds on (its reference [1]).
//
// Bianchi's JSAC paper reports saturation throughput for these exact
// parameters. Classic anchor points (figures 6-7 there): basic access
// with W = 32, m = 5 yields S ≈ 0.85 → 0.80 falling in n; W = 32, m = 3
// slightly below; RTS/CTS stays ≈ 0.82-0.84 nearly flat in n. This
// harness regenerates those curves from our chain + simulator to certify
// the substrate independently of the game layer.
#include <cstdio>

#include "analytical/throughput.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Substrate validation: Bianchi (2000) saturation throughput",
      "paper ref [1], figures 6-7 anchor points",
      "S vs n; model = extended chain, sim = slot simulator (200k slots).");

  phy::Parameters params = phy::Parameters::paper();

  util::TextTable table({"config", "n", "S (model)", "S (sim)", "delta"});
  struct Setup {
    const char* name;
    phy::AccessMode mode;
    int w;
    int m;
  };
  const Setup setups[] = {
      {"basic W=32 m=5", phy::AccessMode::kBasic, 32, 5},
      {"basic W=32 m=3", phy::AccessMode::kBasic, 32, 3},
      {"basic W=128 m=3", phy::AccessMode::kBasic, 128, 3},
      {"rts/cts W=32 m=5", phy::AccessMode::kRtsCts, 32, 5},
  };
  for (const Setup& setup : setups) {
    params.max_backoff_stage = setup.m;
    for (int n : {5, 10, 20, 50}) {
      const auto model = analytical::homogeneous_channel_metrics(
          setup.w, n, params, setup.mode);
      sim::SimConfig config;
      config.params = params;
      config.mode = setup.mode;
      config.seed = 0xb1a2c1 + static_cast<std::uint64_t>(n);
      sim::Simulator simulator(config,
                               std::vector<int>(static_cast<std::size_t>(n),
                                                setup.w));
      const auto r = simulator.run_slots(200000);
      table.add_row({setup.name, std::to_string(n),
                     util::fmt_double(model.throughput, 4),
                     util::fmt_double(r.throughput, 4),
                     util::fmt_double(r.throughput - model.throughput, 4)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: model and sim agree to ~0.01 everywhere; basic-access\n"
      "S starts ~0.82-0.85 at n = 5 and decays with n (more so for small\n"
      "m); RTS/CTS stays nearly flat around ~0.82 — Bianchi's headline\n"
      "qualitative results.\n");
  return 0;
}
