// Lemma 1 / Lemma 4 — numerical validation of the payoff orderings.
//
// Lemma 1: in any profile, W_i > W_j ⇒ p_i > p_j, τ_i < τ_j,
// U_i^s < U_j^s. Lemma 4: a unilateral deviation above (below) a
// homogeneous profile hurts (helps) the deviator relative to both the
// symmetric payoff and the conformers'. Both are verified on the model
// and on the slot-level simulator side by side.
#include <cstdio>
#include <vector>

#include "analytical/utility.hpp"
#include "bench_common.hpp"
#include "game/deviation.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Deviation payoff orderings",
      "paper Lemma 1 and Lemma 4 (numerical check, model + simulator)",
      "Basic access. U values are stage payoffs (T = 10 s).");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);

  // Lemma 1: a strictly increasing profile.
  const std::vector<int> profile{20, 40, 80, 160, 320};
  const auto state = analytical::solve_network(profile, params.max_backoff_stage);
  const auto u_model = game.stage_utilities(profile);

  sim::SimConfig config;
  config.seed = 0xde71a7;
  sim::Simulator simulator(config, profile);
  const auto r = simulator.run_slots(600000);

  util::TextTable lemma1({"W_i", "tau (model)", "tau (sim)", "p (model)",
                          "p (sim)", "U^s (model)", "U^s (sim)"});
  for (std::size_t i = 0; i < profile.size(); ++i) {
    lemma1.add_row({std::to_string(profile[i]),
                    util::fmt_double(state.tau[i], 5),
                    util::fmt_double(r.measured_tau[i], 5),
                    util::fmt_double(state.p[i], 4),
                    util::fmt_double(r.measured_p[i], 4),
                    util::fmt_double(u_model[i], 1),
                    util::fmt_double(r.payoff_rate[i] * 1e7, 1)});
  }
  std::printf("%s\n", lemma1.to_string().c_str());

  // Lemma 4: deviations around a homogeneous profile at W = 100, n = 5.
  util::TextTable lemma4({"W_dev", "U_dev", "U_conform", "U_symmetric",
                          "ordering"});
  for (int w_dev : {25, 50, 75, 100, 150, 300}) {
    const auto d = game::deviation_stage_payoffs(game, 5, 100, w_dev);
    const char* ordering =
        w_dev < 100   ? (d.conformer < d.symmetric && d.symmetric < d.deviator
                             ? "U_j < U^s < U_i  (Lemma 4.2 OK)"
                             : "VIOLATED")
        : w_dev > 100 ? (d.deviator < d.symmetric && d.symmetric < d.conformer
                             ? "U_i < U^s < U_j  (Lemma 4.1 OK)"
                             : "VIOLATED")
                      : "degenerate (no deviation)";
    lemma4.add_row({std::to_string(w_dev), util::fmt_double(d.deviator, 1),
                    util::fmt_double(d.conformer, 1),
                    util::fmt_double(d.symmetric, 1), ordering});
  }
  std::printf("%s\n", lemma4.to_string().c_str());
  std::printf(
      "Expectation: tau decreasing / p increasing / U decreasing down the\n"
      "Lemma 1 table in both columns; every Lemma 4 row reports OK.\n");
  return 0;
}
