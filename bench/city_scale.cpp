// Metropolitan-scale trajectory: BENCH_city_scale.json.
//
// Sweeps n ∈ {10^3, 10^4, 10^5} mobile + churning city-scale runs
// (multihop::run_city_scale, docs/CITY_SCALE.md): spatial-hash topology
// with incremental mobility updates, local-game seeding, graph-TFT, and
// class-deduplicated neighborhood pricing, reporting the Theorem-3
// quasi-optimality fraction at each scale. The Θ(n²) oracle build is
// timed where feasible (n ≤ 10^4) so the superlinear gap is on record.
//
// Artifact split — the determinism contract:
//   BENCH_city_scale.json          deterministic results only (class
//                                  counts, cache traffic, update stats,
//                                  quasi-optimality); byte-identical at
//                                  any --jobs, pinned by
//                                  tests/parallel/city_scale_invariance_test.cpp
//   BENCH_city_scale_timings.json  wall-clock build/update/solve-dedup
//                                  timings; machine-dependent by nature.
//
// Usage: bench_city_scale [--jobs N] [--smoke] [--kernel K]
//                         [--sim-slots N] [output.json]
//   --smoke        one 10^3-node, 2-stage run (the cheap CTest
//                  configuration); writes BENCH_city_scale_smoke.json
//                  unless a path is given.
//   --kernel K     adds the per-stage slot-sim leg with kernel K ∈
//                  {slot-loop, pdes}. `pdes` runs BOTH kernels per stage
//                  (docs/PDES.md), asserts their results bitwise equal
//                  (non-zero exit on divergence), and reports the
//                  slot-loop/PDES speedup in the timings artifact; PDES
//                  workers come from --jobs.
//   --sim-slots N  slot count of the sim leg (default 2000 once --kernel
//                  is given). sim_* results are kernel- and jobs-
//                  invariant, so the deterministic artifact stays
//                  byte-identical for any --jobs at a fixed --kernel
//                  on/off state.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "multihop/city_scale.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

std::vector<multihop::CityScaleConfig> scenarios(bool smoke,
                                                 std::size_t solver_jobs,
                                                 std::uint64_t sim_slots,
                                                 multihop::MultihopKernel
                                                     sim_kernel) {
  std::vector<multihop::CityScaleConfig> out;
  multihop::CityScaleConfig base;
  base.solver_jobs = solver_jobs;
  base.seed = 2026;
  base.sim_slots = sim_slots;
  base.sim_kernel = sim_kernel;
  base.sim_jobs = solver_jobs;
  base.sim_compare_kernels =
      sim_slots > 0 && sim_kernel == multihop::MultihopKernel::kPdes;
  if (smoke) {
    base.nodes = 1000;
    base.stages = 2;
    base.time_oracle = true;
    out.push_back(base);
    return out;
  }
  base.nodes = 1000;
  base.stages = 4;
  base.time_oracle = true;
  out.push_back(base);

  base.nodes = 10000;
  base.stages = 3;
  base.time_oracle = true;  // ~5·10^7 pair checks: slow but on record
  out.push_back(base);

  base.nodes = 100000;
  base.stages = 2;
  base.time_oracle = false;  // Θ(n²) = 5·10^9 pairs — out of budget
  base.price_seed_profile = false;  // ~n distinct seed classes at 10^5
  out.push_back(base);
  return out;
}

void write_results_json(const std::string& path,
                        const std::vector<multihop::CityScaleConfig>& configs,
                        const std::vector<multihop::CityScaleResult>& runs) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"city-scale multihop: spatial index + "
                    "class-dedup pricing\",\n");
  std::fprintf(out, "  \"deterministic\": true,\n");
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t s = 0; s < runs.size(); ++s) {
    const multihop::CityScaleResult& r = runs[s];
    std::fprintf(out, "    {\"nodes\": %zu, \"arena_m\": %.17g, "
                      "\"range_m\": %.17g,\n",
                 r.nodes, r.arena_m, configs[s].range_m);
    std::fprintf(out, "     \"stages\": [\n");
    for (std::size_t k = 0; k < r.stage.size(); ++k) {
      const multihop::CityScaleStage& st = r.stage[k];
      std::fprintf(
          out,
          "       {\"stage\": %d, \"online\": %zu, \"edges\": %zu, "
          "\"crashes\": %zu, \"joins\": %zu, \"moved\": %zu, "
          "\"rebucketed\": %zu, \"rescanned\": %zu, \"converged_w\": %d, "
          "\"tft_stages\": %d, \"priced_nodes\": %zu, "
          "\"seed_classes\": %zu, \"converged_classes\": %zu, "
          "\"quasi_optimal_fraction\": %.17g, "
          "\"mean_payoff_fraction\": %.17g, "
          "\"min_payoff_fraction\": %.17g",
          st.stage, st.online, st.edges, st.crashes, st.joins,
          st.update.moved, st.update.rebucketed, st.update.rescanned,
          st.converged_w, st.tft_stages, st.priced_nodes, st.seed_classes,
          st.converged_classes, st.quasi_optimal_fraction,
          st.mean_payoff_fraction, st.min_payoff_fraction);
      if (configs[s].sim_slots > 0) {
        // Emitted only when the sim leg ran, so default artifacts keep
        // their historical shape byte-for-byte. sim results are kernel-
        // and jobs-invariant (the PDES determinism contract).
        std::fprintf(out,
                     ",\n        \"sim\": {\"slots\": %llu, \"p_hn\": %.17g, "
                     "\"payoff\": %.17g, \"regions\": %zu, "
                     "\"kernels_match\": %s}",
                     static_cast<unsigned long long>(configs[s].sim_slots),
                     st.sim_p_hn, st.sim_payoff, st.sim_regions,
                     st.sim_kernels_match ? "true" : "false");
      }
      std::fprintf(out, "}%s\n", k + 1 < r.stage.size() ? "," : "");
    }
    std::fprintf(out, "     ],\n");
    std::fprintf(out,
                 "     \"cache\": {\"size\": %zu, \"hits\": %zu, "
                 "\"misses\": %zu, \"hit_rate\": %.17g}}%s\n",
                 r.cache.size, r.cache.hits, r.cache.misses,
                 r.cache.hits + r.cache.misses > 0
                     ? static_cast<double>(r.cache.hits) /
                           static_cast<double>(r.cache.hits + r.cache.misses)
                     : 0.0,
                 s + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

void write_timings_json(const std::string& path,
                        const std::vector<multihop::CityScaleResult>& runs) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"unit\": \"wall-clock ms (machine-dependent; "
                    "NOT part of the byte-identical contract)\",\n");
  std::fprintf(out, "  \"scenarios\": [\n");
  for (std::size_t s = 0; s < runs.size(); ++s) {
    const multihop::CityScaleResult& r = runs[s];
    std::fprintf(out,
                 "    {\"nodes\": %zu, \"grid_build_ms\": %.3f, "
                 "\"incremental_update_ms\": %.3f, \"solve_dedup_ms\": %.3f, "
                 "\"oracle_build_ms\": %.3f, \"oracle_vs_grid\": %.2f",
                 r.nodes, r.build_ms, r.update_ms, r.solve_ms,
                 r.oracle_build_ms,
                 r.oracle_build_ms >= 0.0 && r.build_ms > 0.0
                     ? r.oracle_build_ms / r.build_ms
                     : -1.0);
    if (r.sim_ms > 0.0) {
      // pdes_speedup: serial slot loop over the configured kernel; > 1
      // means the PDES kernel won wall clock (expect ~1.0 on a 1-core
      // host — the regions serialize onto one worker).
      std::fprintf(out,
                   ", \"sim_ms\": %.3f, \"sim_oracle_ms\": %.3f, "
                   "\"pdes_speedup\": %.2f",
                   r.sim_ms, r.sim_oracle_ms,
                   r.sim_oracle_ms >= 0.0 && r.sim_ms > 0.0
                       ? r.sim_oracle_ms / r.sim_ms
                       : -1.0);
    }
    std::fprintf(out, "}%s\n", s + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool sim_leg = false;
  std::uint64_t sim_slots = 0;
  multihop::MultihopKernel sim_kernel = multihop::MultihopKernel::kSlotLoop;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
      if (arg == "--jobs") ++i;  // value consumed by jobs_option
    } else if (arg == "--kernel" && i + 1 < argc) {
      const std::string kernel = argv[++i];
      if (kernel == "pdes") {
        sim_kernel = multihop::MultihopKernel::kPdes;
      } else if (kernel != "slot-loop") {
        std::fprintf(stderr, "unknown --kernel %s (slot-loop|pdes)\n",
                     kernel.c_str());
        return 2;
      }
      sim_leg = true;
    } else if (arg == "--sim-slots" && i + 1 < argc) {
      sim_slots = std::strtoull(argv[++i], nullptr, 10);
      sim_leg = sim_slots > 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    }
  }
  if (sim_leg && sim_slots == 0) sim_slots = 2000;
  if (path.empty()) {
    path = smoke ? "BENCH_city_scale_smoke.json" : "BENCH_city_scale.json";
  }
  const std::size_t jobs = bench::jobs_option(argc, argv);

  bench::print_header(
      "City-scale multihop: spatial-hash topology + class-dedup pricing",
      "ROADMAP metropolitan-scale item; Theorem 3 quasi-optimality at scale",
      "Constant-density arenas, random-waypoint mobility, Bernoulli churn.");
  bench::print_jobs(jobs);

  const auto configs = scenarios(smoke, jobs, sim_slots, sim_kernel);
  std::vector<multihop::CityScaleResult> runs(configs.size());
  bench::sweep(configs.size(), /*jobs=*/1, [&](std::size_t s) {
    // Scenarios run sequentially (each already fans its solver misses
    // across `jobs`); memory, not CPU, is the reason — two 10^5-node
    // runs side by side double the index + trajectory footprint.
    runs[s] = multihop::run_city_scale(configs[s]);
  });

  util::TextTable table({"n", "stage", "online", "edges", "W_m",
                         "classes(seed)", "classes(conv)", "quasi>=96%",
                         "mean frac"});
  for (std::size_t s = 0; s < runs.size(); ++s) {
    for (const multihop::CityScaleStage& st : runs[s].stage) {
      table.add_row({std::to_string(runs[s].nodes),
                     std::to_string(st.stage), std::to_string(st.online),
                     std::to_string(st.edges),
                     std::to_string(st.converged_w),
                     std::to_string(st.seed_classes),
                     std::to_string(st.converged_classes),
                     util::fmt_percent(st.quasi_optimal_fraction, 1),
                     util::fmt_percent(st.mean_payoff_fraction, 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  bool kernels_diverged = false;
  for (std::size_t s = 0; s < runs.size(); ++s) {
    const multihop::CityScaleResult& r = runs[s];
    std::printf("n=%zu: arena %.0f m, grid build %.2f ms, incremental "
                "updates %.2f ms, pricing %.2f ms, cache %zu/%zu hits",
                r.nodes, r.arena_m, r.build_ms, r.update_ms,
                r.solve_ms, r.cache.hits, r.cache.hits + r.cache.misses);
    if (r.oracle_build_ms >= 0.0) {
      std::printf(", oracle build %.2f ms (%.1fx grid)", r.oracle_build_ms,
                  r.build_ms > 0.0 ? r.oracle_build_ms / r.build_ms : 0.0);
    }
    if (r.sim_ms > 0.0) {
      std::printf(", sim %.2f ms", r.sim_ms);
      if (r.sim_oracle_ms >= 0.0 && r.sim_ms > 0.0) {
        std::printf(" (slot-loop %.2f ms, pdes speedup %.2fx)",
                    r.sim_oracle_ms, r.sim_oracle_ms / r.sim_ms);
      }
    }
    std::printf("\n");
    for (const multihop::CityScaleStage& st : r.stage) {
      if (!st.sim_kernels_match) kernels_diverged = true;
    }
  }
  if (kernels_diverged) {
    std::fprintf(stderr, "ERROR: PDES kernel diverged from the slot-loop "
                         "oracle (determinism contract violated)\n");
  }

  if (sim_leg) {
    util::TextTable sim_table(
        {"n", "stage", "sim p_hn", "sim payoff", "regions", "match"});
    for (std::size_t s = 0; s < runs.size(); ++s) {
      for (const multihop::CityScaleStage& st : runs[s].stage) {
        sim_table.add_row(
            {std::to_string(runs[s].nodes), std::to_string(st.stage),
             util::fmt_double(st.sim_p_hn, 4),
             util::fmt_double(st.sim_payoff, 4),
             std::to_string(st.sim_regions),
             st.sim_kernels_match ? "yes" : "NO"});
      }
    }
    std::printf("%s\n", sim_table.to_string().c_str());
  }

  write_results_json(path, configs, runs);
  const std::string timings_path =
      path.size() > 5 && path.rfind(".json") == path.size() - 5
          ? path.substr(0, path.size() - 5) + "_timings.json"
          : path + "_timings.json";
  write_timings_json(timings_path, runs);
  std::printf("\nwrote %s (deterministic) and %s (wall clock)\n",
              path.c_str(), timings_path.c_str());
  return kernels_diverged ? 1 : 0;
}
