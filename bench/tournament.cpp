// Strategy tournament — testing "TFT is the best strategy" (paper §IV).
//
// Invasion analysis over the paper's cast: can a population of strategy A
// deter a lone B-mutant (mutant payoff vs the never-deviate
// counterfactual, the §V.D / Theorem 2 notion)? Plus Axelrod-style
// round-robin scores across mixes, and the deterrence horizon — the
// number of stages at which TFT's collective punishment starts beating
// the deviation jackpot.
#include <cstdio>

#include "bench_common.hpp"
#include "game/equilibrium.hpp"
#include "game/replicator.hpp"
#include "game/tournament.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Strategy tournament: invasion resistance and round-robin scores",
      "paper §IV (TFT as 'the best strategy'), §V.D deterrence boundary",
      "Basic access, n = 5, delta = 0.9999, W* anchors the roster.");
  const std::size_t jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(jobs);

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const int n = 5;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();
  const auto roster = game::standard_roster(game, n, w_star);

  // 1. Invasion matrix at a long horizon (mixes fanned across jobs).
  const game::Tournament tournament(game, n, 300, jobs);
  const auto matrix = tournament.invasion_matrix(roster);
  std::vector<std::string> inv_header{"population \\ mutant"};
  for (const auto& contender : roster) inv_header.push_back(contender.name);
  util::TextTable inv(std::move(inv_header));
  for (std::size_t i = 0; i < roster.size(); ++i) {
    std::vector<std::string> row{roster[i].name};
    for (std::size_t j = 0; j < roster.size(); ++j) {
      row.push_back(i == j ? "-" : (matrix[i][j] ? "resists" : "INVADED"));
    }
    inv.add_row(std::move(row));
  }
  std::printf("%s\n", inv.to_string().c_str());

  // 2. Round-robin scores (mean per-member payoff across all mixes).
  const auto scores = tournament.round_robin_scores(roster);
  util::TextTable rr({"strategy", "round-robin score"});
  for (std::size_t i = 0; i < roster.size(); ++i) {
    rr.add_row({roster[i].name, util::fmt_double(scores[i], 0)});
  }
  std::printf("%s\n", rr.to_string().c_str());

  // 3. Deterrence horizon: smallest stage count at which the TFT
  //    population resists the short-sighted deviant.
  const game::Contender mutant = roster[3];
  const game::Contender resident = roster[0];
  int horizon = -1;
  for (int stages : {5, 10, 20, 40, 60, 80, 120, 200, 300}) {
    const game::Tournament t(game, n, stages, jobs);
    if (t.resists_invasion(resident, mutant)) {
      horizon = stages;
      break;
    }
  }
  std::printf("deterrence horizon vs %s: TFT resists from ~%d stages "
              "(~%d s of operation at T = 10 s)\n\n",
              mutant.name.c_str(), horizon, horizon * 10);
  // 4. Replicator dynamics: the evolutionary basin of TFT vs the deviant.
  const game::ReplicatorDynamics dynamics(tournament);
  const game::Contender& tft_c = roster[0];
  const game::Contender& dev_c = roster[3];
  util::TextTable evo({"initial TFT share", "final TFT share",
                       "generations"});
  for (double share0 : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    const auto run = dynamics.run(tft_c, dev_c, share0, 800);
    evo.add_row({util::fmt_double(share0, 2),
                 util::fmt_double(run.final_share_a, 3),
                 std::to_string(run.trajectory.size())});
  }
  std::printf("%s\n", evo.to_string().c_str());
  // Locate the basin boundary by bisection on the fitness-gap sign.
  double lo = 0.05;
  double hi = 0.95;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const auto [fa, fb] = dynamics.expected_fitness(tft_c, dev_c, mid);
    (fa < fb ? lo : hi) = mid;
  }
  std::printf("evolutionary basin boundary: TFT needs > %.0f%% initial "
              "share to fixate\n\n", 100.0 * 0.5 * (lo + hi));

  // 5. Faulted mix under sequential stopping: the TFT-vs-deviant mix
  //    replayed across fault trajectories (churn + lossy observation),
  //    streamed until the payoff-A CI half-width meets --ci-target or
  //    --ci-rel (or the --max-reps budget, default 12, in batches of 4,
  //    runs out).
  {
    fault::FaultPlan plan;
    plan.churn.crash_rate = 0.02;
    plan.churn.recover_rate = 0.3;
    plan.observation.loss_probability = 0.2;
    game::Tournament faulted(game, n, 120, jobs);
    faulted.set_fault_plan(plan, 0x70f7ULL);
    const parallel::StoppingRule rule = bench::resolve_stopping(
        bench::stopping_option(argc, argv), "payoff A", 12, 4);
    const auto rep =
        faulted.play_mix_replicated(roster[0], roster[3], n - 1, rule);
    std::printf("faulted TFT-vs-deviant mix (churn 2%%, obs loss 20%%):\n"
                "%s\n%s\n",
                rep.stopping.summary().c_str(),
                util::format_metric_summaries(rep.metrics).c_str());
  }

  // The whole tournament routes its heterogeneous solves through one
  // class-canonical cache (src/analytical/solver_cache.hpp): repeated
  // games replay profiles stage after stage, and mixes that permute the
  // same window multiset collapse onto one key. The hit rate is the
  // fraction of stage evaluations the symmetry collapse deduplicated.
  {
    const analytical::SolveCacheStats stats = game.solve_cache_stats();
    const std::uint64_t lookups = stats.hits + stats.misses;
    std::printf("solve cache: %llu lookups, %llu hits (%.1f%%), "
                "%zu distinct class profiles\n\n",
                static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(stats.hits),
                lookups != 0 ? 100.0 * static_cast<double>(stats.hits) /
                                   static_cast<double>(lookups)
                             : 0.0,
                stats.size);
  }

  std::printf(
      "Expectation: the TFT and GTFT rows resist every mutant while the\n"
      "constant (never-punishing) population is INVADED by the\n"
      "short-sighted deviant — the punishment, not the convention,\n"
      "protects the NE. Round-robin scores rank the punishers above\n"
      "constant; the deviant scores high in-game but its hosts pay for it.\n"
      "The deterrence horizon quantifies 'long-sighted': interactions\n"
      "must be expected to last ~minutes before selfishness is safe.\n"
      "Replicator dynamics are bistable: TFT fixates from above the basin\n"
      "boundary (deviants poison only their own games under random\n"
      "matching) and goes extinct below it — evolution sustains the NE\n"
      "only given a critical mass of cooperators.\n"
      "The forgiving cast shows the robustness/deterrence tradeoff:\n"
      "contrite-tft is INVADED by the relentless short-sighted deviant\n"
      "(after each punishment the deviant sits at the standing reference,\n"
      "so contrition reads the history as clean and drifts back up), while\n"
      "forgiving-gtft still resists — its averaged trigger keeps refiring\n"
      "as long as the deviant's r0-mean stays below beta x own.\n");
  return 0;
}
