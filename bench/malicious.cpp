// §V.E — impact of malicious players.
//
// A malicious node drops its window to W_mal; TFT contagion drags every
// player down with it, degrading the global payoff — and, if W_mal is
// small enough (and backoff headroom limited), paralyzing the network.
// This harness traces the welfare-degradation curve, verifies the TFT
// contagion dynamics stage by stage, and locates the paralysis threshold
// in the no-backoff (m = 0) regime.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "game/deviation.hpp"
#include "game/equilibrium.hpp"
#include "game/repeated_game.hpp"
#include "util/table.hpp"

namespace {
using namespace smac;
}  // namespace

int main() {
  bench::print_header(
      "Malicious player impact",
      "paper §V.E (TFT contagion; small W_mal paralyzes the network)",
      "Basic access, n = 5.");

  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kBasic);
  const int n = 5;
  const int w_star = game::EquilibriumFinder(game, n).efficient_cw();

  // 1. Welfare after contagion vs the attacker's window.
  util::TextTable curve({"W_mal", "welfare vs W_c* (m=6)",
                         "welfare vs W_c* (m=0)"});
  phy::Parameters bare = params;
  bare.max_backoff_stage = 0;
  const game::StageGame bare_game(bare, phy::AccessMode::kBasic);
  const int bare_star = game::EquilibriumFinder(bare_game, n).efficient_cw();
  for (int w_mal : {w_star, w_star / 2, w_star / 4, w_star / 8, 8, 4, 2, 1}) {
    curve.add_row(
        {std::to_string(w_mal),
         util::fmt_percent(
             game::malicious_welfare_ratio(game, n, w_star, w_mal), 1),
         util::fmt_percent(
             game::malicious_welfare_ratio(bare_game, n, bare_star, w_mal),
             1)});
  }
  std::printf("%s\n", curve.to_string().c_str());

  const auto paralysis = game::paralysis_threshold(bare_game, n);
  std::printf("paralysis threshold (m=0): W <= %s drives utility negative; "
              "m=6 never paralyzes at n=%d\n\n",
              paralysis ? std::to_string(*paralysis).c_str() : "none", n);

  // 2. Stage-by-stage contagion through a TFT population.
  std::vector<std::unique_ptr<game::Strategy>> pop;
  pop.push_back(std::make_unique<game::MaliciousStrategy>(w_star, 2, 2));
  for (int i = 1; i < n; ++i) {
    pop.push_back(std::make_unique<game::TitForTat>(w_star));
  }
  game::RepeatedGameEngine engine(game, std::move(pop));
  const auto result = engine.play(6);
  util::TextTable traj({"stage", "attacker W", "TFT W", "attacker payoff",
                        "TFT payoff"});
  for (std::size_t k = 0; k < result.history.size(); ++k) {
    const auto& rec = result.history[k];
    traj.add_row({std::to_string(k), std::to_string(rec.cw[0]),
                  std::to_string(rec.cw[1]),
                  util::fmt_double(rec.utility[0], 1),
                  util::fmt_double(rec.utility[1], 1)});
  }
  std::printf("%s\n", traj.to_string().c_str());
  std::printf(
      "Expectation: welfare decays monotonically as W_mal shrinks; the m=0\n"
      "column goes negative (collapse) while m=6 bottoms out positive; the\n"
      "trajectory shows one attack stage dragging all TFT players down for\n"
      "good — selfish TFT cannot recover from a malicious anchor.\n");
  return 0;
}
