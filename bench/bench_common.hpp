// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdio>
#include <string>

namespace smac::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace smac::bench
