// Shared helpers for the experiment harnesses.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "parallel/replication.hpp"
#include "parallel/thread_pool.hpp"

namespace smac::bench {

inline void print_header(const std::string& experiment,
                         const std::string& paper_ref,
                         const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n\n");
}

/// Worker count for replication fan-out: `--jobs N` / `--jobs=N` on the
/// command line wins, then the SMAC_JOBS environment variable, then
/// hardware concurrency (both via ThreadPool::default_jobs()). Returns at
/// least 1; malformed values fall through to the default. Results are
/// seed-determined and independent of this knob — it only changes
/// wall-clock time.
inline std::size_t jobs_option(int argc, const char* const* argv) {
  auto parse = [](const char* text) -> std::size_t {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    return (end != text && *end == '\0' && v > 0)
               ? static_cast<std::size_t>(v)
               : 0;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      if (const std::size_t v = parse(arg.c_str() + 7)) return v;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (const std::size_t v = parse(argv[i + 1])) return v;
    }
  }
  return parallel::ThreadPool::default_jobs();
}

/// Fans fn(i) for i in [0, count) across `jobs` workers (inline when
/// jobs <= 1 or there is at most one index). Each index must be a
/// self-contained experiment with its own fixed seed writing into a
/// per-index slot; callers reduce the slots in index order afterwards, so
/// printed tables are byte-identical for any jobs value.
template <class Fn>
inline void sweep(std::size_t count, std::size_t jobs, Fn&& fn) {
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  parallel::ThreadPool pool(jobs);
  pool.for_each_index(count, std::forward<Fn>(fn));
}

inline void print_jobs(std::size_t jobs) {
  std::printf("replication jobs = %zu (override: --jobs N or SMAC_JOBS; "
              "results are seed-determined, independent of jobs)\n\n",
              jobs);
}

/// Sequential-stopping knobs for replicated experiments:
///   --ci-target X   stop once the watched metric's CI half-width <= X
///                   (0, the default, keeps the bench's fixed N)
///   --ci-rel X      stop once half-width <= X · |running mean| — scale-
///                   free, composes across metrics whose magnitudes differ
///                   by orders; with both knobs, either target stops
///   --max-reps N    replication budget cap (0 = keep the bench default)
/// Parsed into a parallel::StoppingRule template whose metric/confidence/
/// min_reps/batch_size the bench chooses per table. Stop points are
/// seed-determined and jobs-invariant (src/parallel/replication.hpp).
inline parallel::StoppingRule stopping_option(int argc,
                                              const char* const* argv) {
  auto parse_double = [](const char* text) -> double {
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    return (end != text && *end == '\0' && v > 0.0) ? v : 0.0;
  };
  auto parse_size = [](const char* text) -> std::size_t {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    return (end != text && *end == '\0' && v > 0)
               ? static_cast<std::size_t>(v)
               : 0;
  };
  parallel::StoppingRule rule;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ci-target=", 0) == 0) {
      rule.ci_half_width_target = parse_double(arg.c_str() + 12);
    } else if (arg == "--ci-target" && i + 1 < argc) {
      rule.ci_half_width_target = parse_double(argv[i + 1]);
    } else if (arg.rfind("--ci-rel=", 0) == 0) {
      rule.ci_rel_target = parse_double(arg.c_str() + 9);
    } else if (arg == "--ci-rel" && i + 1 < argc) {
      rule.ci_rel_target = parse_double(argv[i + 1]);
    } else if (arg.rfind("--max-reps=", 0) == 0) {
      rule.max_reps = parse_size(arg.c_str() + 11);
    } else if (arg == "--max-reps" && i + 1 < argc) {
      rule.max_reps = parse_size(argv[i + 1]);
    }
  }
  return rule;
}

/// Applies a bench's per-table defaults to the user's CLI rule: the
/// watched metric and batch size always come from the bench; max_reps
/// stays at `default_reps` unless --max-reps overrode it.
inline parallel::StoppingRule resolve_stopping(parallel::StoppingRule rule,
                                               const std::string& metric,
                                               std::size_t default_reps,
                                               std::size_t batch_size = 0) {
  rule.metric = metric;
  if (rule.max_reps == 0) rule.max_reps = default_reps;
  if (batch_size != 0) rule.batch_size = batch_size;
  return rule;
}

/// One line describing how a replicated table was stopped — only worth
/// printing when a --ci-target is active (fixed-N runs stay byte-stable
/// without it).
inline void print_stopping(const parallel::StoppingReport& report) {
  std::printf("%s\n", report.summary().c_str());
}

}  // namespace smac::bench
