// Misbehavior detection (the enforcement side of ref [3]).
//
// The paper's TFT needs to *observe* windows; Kyasanur & Vaidya's line of
// work detects nodes that undercut an agreed window. This harness
// characterizes our binomial detector: slot budgets to flag cheaters of
// varying severity at 90% power, the measured detection/false-positive
// rates at those budgets, and how the tolerance knob trades the two —
// completing the trust pipeline (search finds W_c*, the detector guards
// it, GTFT meters the punishment).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "parallel/replication.hpp"
#include "sim/misbehavior_detector.hpp"
#include "util/table.hpp"

namespace {

using namespace smac;

std::size_t g_jobs = 1;
parallel::StoppingRule g_rule;  ///< CLI template; metric/budget set per call

// Fraction of independent replications in which node 0 is flagged.
// Replication r runs with stream seed (0xdec0 + w_node0, r), so the rate
// is a pure function of the arguments — independent of g_jobs. `runs` is
// the fixed default; an active --ci-target replicates in batches of 4
// until the flag-rate CI half-width meets it (or --max-reps runs out).
double measured_rate(int w_agreed, int w_node0, std::uint64_t slots,
                     const sim::DetectorConfig& config, int runs) {
  const parallel::StoppingRule rule = bench::resolve_stopping(
      g_rule, "flagged", static_cast<std::size_t>(runs), 4);
  const parallel::ReplicationRunner runner(
      {rule.max_reps, 0xdec0 + static_cast<std::uint64_t>(w_node0), g_jobs});
  const auto summary = runner.run_sequential(
      {"flagged"}, rule, [&](std::uint64_t seed, std::size_t /*index*/) {
        sim::SimConfig sc;
        sc.seed = seed;
        std::vector<int> profile(5, w_agreed);
        profile[0] = w_node0;
        sim::Simulator simulator(sc, profile);
        const auto verdicts = sim::detect_misbehavior(
            simulator.run_slots(slots), w_agreed, 6, config);
        return std::vector<double>{verdicts[0].flagged ? 1.0 : 0.0};
      });
  return summary.metrics[0].mean;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Contention-window misbehavior detection",
      "ref [3] (Kyasanur & Vaidya) enforcement companion",
      "Agreement W = 64, n = 5, significance 1%, tolerance 5%.");
  g_jobs = bench::jobs_option(argc, argv);
  bench::print_jobs(g_jobs);
  g_rule = bench::stopping_option(argc, argv);
  if (g_rule.ci_half_width_target > 0.0) {
    std::printf("sequential stopping active: CI half-width target %g on "
                "every measured rate%s\n\n",
                g_rule.ci_half_width_target,
                g_rule.max_reps ? " (capped by --max-reps)" : "");
  }

  const sim::DetectorConfig config;

  // 1. Budget and measured rates vs cheat severity.
  util::TextTable table({"W_cheat", "cheat factor", "budget (slots, 90% pwr)",
                         "detect rate @2x budget", "channel time @ budget"});
  for (int w_cheat : {8, 16, 32, 48, 56}) {
    const auto budget = sim::expected_detection_slots(64, w_cheat, 5, 6,
                                                      config, 0.9);
    std::string rate = "n/a";
    std::string airtime = "n/a";
    if (budget > 0) {
      rate = util::fmt_percent(
          measured_rate(64, w_cheat, 2 * budget, config, 12), 0);
      // ~0.4 ms per slot at this contention level (model T_slot).
      airtime = util::fmt_double(budget * 4e-4, 1) + " s";
    }
    table.add_row({std::to_string(w_cheat),
                   util::fmt_double(64.0 / w_cheat, 1) + "x",
                   budget > 0 ? std::to_string(budget) : "undetectable",
                   rate, airtime});
  }
  std::printf("%s\n", table.to_string().c_str());

  // 2. False positives on a compliant network vs tolerance.
  util::TextTable fp({"tolerance", "false-positive rate (compliant)"});
  for (double tolerance : {0.0, 0.02, 0.05, 0.10}) {
    sim::DetectorConfig c;
    c.tolerance = tolerance;
    fp.add_row({util::fmt_percent(tolerance, 0),
                util::fmt_percent(measured_rate(64, 64, 60000, c, 25), 0)});
  }
  std::printf("%s\n", fp.to_string().c_str());
  std::printf(
      "Expectation: severe cheats are caught within fractions of a second\n"
      "of channel time while near-marginal ones take orders of magnitude\n"
      "longer, and sub-tolerance ones are undetectable by design. False\n"
      "positives stay at or below the 1%% design level even at zero\n"
      "tolerance — the mean-field tau tracks the realized attempt rate\n"
      "tightly — so the tolerance knob mainly grants amnesty to\n"
      "*deliberate* marginal undercuts (the detector-side analogue of\n"
      "GTFT's beta).\n");
  return 0;
}
