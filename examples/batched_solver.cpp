// Batched solver quickstart: submit 1000 profiles through SolverService,
// drain once, print the throughput.
//
// The service deduplicates requests onto canonical symmetry-class keys,
// answers repeats and permutations from its cache, and solves the
// distinct misses through the lockstep batch kernel — every ticket's
// result is bitwise identical to a one-at-a-time try_solve_network call
// (see docs/SOLVER_API.md for the full contract).
//
// Build & run:  ./build/examples/batched_solver [requests]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analytical/solver_service.hpp"

int main(int argc, char** argv) {
  using namespace smac;
  using Clock = std::chrono::steady_clock;
  const int requests = argc > 1 ? std::atoi(argv[1]) : 1000;
  if (requests < 1) {
    std::fprintf(stderr, "usage: %s [requests >= 1]\n", argv[0]);
    return 1;
  }

  analytical::SolverService service;

  // 1. Submit: a deviation-scan-shaped request stream — 20 cooperating
  //    nodes at W = 128 with one deviant sweeping its window. Nothing is
  //    solved yet; the service just queues the requests.
  const auto t0 = Clock::now();
  std::vector<analytical::SolverService::Ticket> tickets;
  tickets.reserve(static_cast<std::size_t>(requests));
  for (int r = 0; r < requests; ++r) {
    std::vector<int> profile(20, 128);
    profile[0] = 1 + r % 127;  // the deviant's window, revisited cyclically
    tickets.push_back(service.submit(std::move(profile), 6, 0.0));
  }

  // 2. Drain: one lockstep batch over the distinct class systems; repeats
  //    of the same deviant window are cache hits.
  service.drain();
  const auto t1 = Clock::now();

  // 3. Redeem the tickets (already fulfilled — result() would also have
  //    drained for us on first use).
  double tau_sum = 0.0;
  for (const auto& ticket : tickets) {
    tau_sum += ticket.result().state.tau[0];  // the deviant's attempt rate
  }

  const double us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  const analytical::SolveCacheStats stats = service.cache_stats();
  std::printf("solved %d requests in %.1f us (%.0f requests/s)\n", requests,
              us, requests / us * 1e6);
  std::printf("cache: %zu distinct class systems, %llu hits, %llu misses\n",
              stats.size, static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  std::printf("mean deviant tau: %.6f\n", tau_sum / requests);
  return 0;
}
