// Scenario: a mobile multi-hop ad hoc network of selfish nodes (§VI-VII.B
// at example scale).
//
// 40 nodes roam a 800 m × 800 m field under random waypoint; each seeds
// its contention window with the efficient NE of its *local* single-hop
// game (it knows only its neighbor count), then plays TFT. The example
// traces the window convergence to W_m = min_i W_i, verifies Theorem 3's
// no-deviation property in simulation, and measures quasi-optimality.
//
// Build & run:  ./build/examples/multihop_adhoc
#include <algorithm>
#include <cstdio>
#include <vector>

#include "game/equilibrium.hpp"
#include "multihop/local_game.hpp"
#include "multihop/mobility.hpp"
#include "multihop/multihop_simulator.hpp"
#include "util/stats.hpp"

int main() {
  using namespace smac;
  constexpr int kNodes = 40;

  multihop::MobilityConfig mob_config;
  mob_config.width_m = 800.0;
  mob_config.height_m = 800.0;
  mob_config.seed = 7;
  multihop::RandomWaypointModel mobility(mob_config, kNodes);

  multihop::MultihopConfig config;
  config.seed = 7;
  multihop::Topology topo(mobility.positions(), config.range_m);
  std::printf("field: 800x800 m, %d nodes, range %.0f m, connected: %s, "
              "diameter: %zu hops\n",
              kNodes, config.range_m, topo.connected() ? "yes" : "no",
              topo.connected() ? topo.diameter() : 0);

  // 1. Local-game seeding: each node solves the (deg+1)-player single-hop
  //    game — no global knowledge needed.
  const phy::Parameters params = phy::Parameters::paper();
  const game::StageGame game(params, phy::AccessMode::kRtsCts);
  const auto seeds = multihop::local_efficient_cw(topo, game);
  std::printf("\nlocal NE seeds (per node, from its neighbor count):\n  ");
  for (int w : seeds) std::printf("%d ", w);
  std::printf("\n");

  // 2. Graph-TFT convergence: the minimum floods the network within
  //    diameter stages (Theorem 3's W_m).
  const auto conv = multihop::tft_min_convergence(topo, seeds);
  std::printf("\nTFT convergence to W_m = %d in %d stages:\n",
              conv.converged_w, conv.stages);
  for (std::size_t k = 0; k < conv.trajectory.size(); ++k) {
    util::RunningStats spread;
    for (int w : conv.trajectory[k]) spread.add(w);
    std::printf("  stage %zu: min=%g max=%g mean=%.1f\n", k, spread.min(),
                spread.max(), spread.mean());
  }

  // 3. Theorem 3 in simulation: at W_m, unilateral deviation does not pay.
  const int w_m = conv.converged_w;
  multihop::MultihopSimulator sim(config, topo,
                                  std::vector<int>(kNodes, w_m));
  const auto at_ne = sim.run_slots(400000);
  // Let the best-connected node try deviating down and up.
  std::size_t probe = 0;
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    if (topo.degree(i) > topo.degree(probe)) probe = i;
  }
  std::printf("\nTheorem 3 check at node %zu (degree %zu):\n", probe,
              topo.degree(probe));
  std::printf("  payoff at W_m=%d:        %.3e\n", w_m,
              at_ne.node[probe].payoff_rate);
  for (int w_dev : {std::max(1, w_m / 2), w_m * 2}) {
    multihop::MultihopSimulator dev_sim(config, topo,
                                        std::vector<int>(kNodes, w_m));
    dev_sim.set_cw(probe, w_dev);
    // TFT reaction: after one stage the neighbors match a downward
    // deviation; an upward deviation just loses share. Simulate the
    // deviation stage followed by the converged aftermath.
    const auto during = dev_sim.run_slots(400000);
    if (w_dev < w_m) {
      dev_sim.set_all_cw(w_dev);  // contagion
      const auto after = dev_sim.run_slots(400000);
      std::printf("  deviate down to %d: stage payoff %.3e, but after TFT "
                  "contagion %.3e\n",
                  w_dev, during.node[probe].payoff_rate,
                  after.node[probe].payoff_rate);
    } else {
      std::printf("  deviate up to %d:   stage payoff %.3e (immediately "
                  "worse)\n",
                  w_dev, during.node[probe].payoff_rate);
    }
  }

  // 4. Quasi-optimality under mobility: global payoff at W_m vs a sweep,
  //    averaged over mobility epochs.
  std::printf("\nquasi-optimality under mobility (global payoff, 6 epochs):\n");
  double best = 0.0;
  double at_wm = 0.0;
  for (int w : {std::max(1, w_m / 2), w_m, w_m * 2, w_m * 3}) {
    multihop::RandomWaypointModel epochs_mobility(mob_config, kNodes);
    multihop::MultihopSimulator mobile_sim(
        config, multihop::Topology(epochs_mobility.positions(), config.range_m),
        std::vector<int>(kNodes, w));
    double total = 0.0;
    for (int epoch = 0; epoch < 6; ++epoch) {
      total += mobile_sim.run_slots(80000).global_payoff_rate / 6.0;
      epochs_mobility.advance(60.0);
      mobile_sim.update_topology(
          multihop::Topology(epochs_mobility.positions(), config.range_m));
    }
    std::printf("  W=%3d: global payoff %.3e\n", w, total);
    best = std::max(best, total);
    if (w == w_m) at_wm = total;
  }
  std::printf("  -> W_m earns %.1f%% of the sweep maximum "
              "(paper: within ~3%%)\n",
              at_wm / best * 100.0);
  return 0;
}
