// Demo of the §V.C distributed search for the efficient NE.
//
// A WLAN of n stations does not know n, so nobody can compute W_c*
// directly. One leader runs the paper's Start-Search / Ready protocol:
// step the common window, measure own payoff over t_m, stop when it
// drops, broadcast the winner. This demo prints the full measurement
// trace so you can watch the hill climb.
//
// Build & run:  ./build/examples/cw_search_demo [n] [w_start]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "game/equilibrium.hpp"
#include "sim/search_protocol.hpp"

int main(int argc, char** argv) {
  using namespace smac;
  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int w_start = argc > 2 ? std::atoi(argv[2]) : 4;
  if (n < 2 || w_start < 1) {
    std::fprintf(stderr, "usage: %s [n >= 2] [w_start >= 1]\n", argv[0]);
    return 1;
  }

  const phy::Parameters params = phy::Parameters::paper();
  const auto mode = phy::AccessMode::kRtsCts;
  const game::StageGame game(params, mode);
  const game::EquilibriumFinder finder(game, n);
  const int w_star = finder.efficient_cw();
  std::printf("%d stations (unknown to them), RTS/CTS; true W_c* = %d\n\n",
              n, w_star);

  sim::SimConfig config;
  config.mode = mode;
  config.seed = 2027;
  sim::Simulator simulator(config,
                           std::vector<int>(static_cast<std::size_t>(n),
                                            w_start));

  sim::SearchConfig search;
  search.w_start = w_start;
  search.settle_us = 2e5;    // t: settle after each Ready broadcast
  search.measure_us = 1e7;   // t_m: payoff measurement window
  search.patience = 3;
  search.improvement_epsilon = 0.005;
  const sim::SearchResult result = sim::run_search(simulator, 0, search);

  std::printf("search trace (leader = station 0):\n");
  for (const auto& point : result.trace) {
    std::printf("  Ready(W=%3d) -> measured payoff %.4e %s\n", point.w,
                point.measured_payoff_rate,
                point.w == result.w_found ? "  <-- broadcast as W_m" : "");
  }
  const double u_found = game.homogeneous_utility_rate(result.w_found, n);
  const double u_star = game.homogeneous_utility_rate(w_star, n);
  std::printf("\nfound W_m = %d in %d Ready rounds (%.1f s of channel time, "
              "left-search: %s)\n",
              result.w_found, result.steps, result.elapsed_us / 1e6,
              result.used_left_search ? "yes" : "no");
  std::printf("model payoff at W_m: %.1f%% of the optimum — on the W_c* "
              "plateau\n", u_found / u_star * 100.0);
  return 0;
}
