// Quickstart: the five-minute tour of the selfish-MAC library.
//
//   1. Pick the network parameters (Table I of the paper).
//   2. Solve the extended Bianchi model for a contention-window profile.
//   3. Find the efficient Nash equilibrium W_c* of the MAC game.
//   4. Check the analytical answer against the slot-level simulator.
//
// Build & run:  ./build/examples/quickstart [n]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analytical/throughput.hpp"
#include "analytical/utility.hpp"
#include "game/equilibrium.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace smac;
  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  if (n < 2) {
    std::fprintf(stderr, "usage: %s [n >= 2]\n", argv[0]);
    return 1;
  }

  // 1. Parameters: 1 Mbit/s 802.11 with the paper's frame sizes and the
  //    game constants g = 1, e = 0.01, T = 10 s, delta = 0.9999.
  const phy::Parameters params = phy::Parameters::paper();
  const auto mode = phy::AccessMode::kBasic;
  const phy::SlotTimes t = params.slot_times(mode);
  std::printf("slot times: sigma=%.0fus Ts=%.0fus Tc=%.0fus\n\n", t.sigma_us,
              t.ts_us, t.tc_us);

  // 2. The coupled (tau, p) fixed point for a heterogeneous profile: one
  //    aggressive node among conservative ones.
  std::vector<int> profile(static_cast<std::size_t>(n), 128);
  profile[0] = 16;  // the selfish one
  const auto state = analytical::solve_network(profile, params.max_backoff_stage);
  const auto metrics = analytical::channel_metrics(state.tau, params, mode);
  const auto utilities = analytical::utility_rates(state, params, mode);
  std::printf("heterogeneous profile (node 0 plays W=16, others W=128):\n");
  std::printf("  node 0: tau=%.4f p=%.4f throughput=%.3f utility=%.3e\n",
              state.tau[0], state.p[0], metrics.per_node_throughput[0],
              utilities[0]);
  std::printf("  node 1: tau=%.4f p=%.4f throughput=%.3f utility=%.3e\n",
              state.tau[1], state.p[1], metrics.per_node_throughput[1],
              utilities[1]);
  std::printf("  -> the aggressor grabs %.1fx the throughput (Lemma 1)\n\n",
              metrics.per_node_throughput[0] / metrics.per_node_throughput[1]);

  // 3. The efficient NE of the n-player game: every common window in
  //    [W_c0, W_c*] is a NE (Theorem 2); refinement keeps W_c*.
  const game::StageGame game(params, mode);
  const game::EquilibriumFinder finder(game, n);
  const auto nash = finder.nash_set();
  std::printf("n = %d players: NE set = [%d, %d] (%d equilibria), "
              "efficient NE W_c* = %d\n",
              n, nash.w_min_viable, nash.w_efficient, nash.count(),
              nash.w_efficient);
  std::printf("  stage utility at W_c*: %.3f (gain units per 10 s stage)\n\n",
              game.homogeneous_stage_utility(nash.w_efficient, n));

  // 4. Validate on the slot-level simulator: measured payoff at W_c*
  //    should beat nearby windows and match the model.
  sim::SimConfig config;
  config.mode = mode;
  config.seed = 42;
  for (int w : {nash.w_efficient / 2, nash.w_efficient, nash.w_efficient * 2}) {
    sim::Simulator simulator(config, std::vector<int>(
                                         static_cast<std::size_t>(n), w));
    const auto r = simulator.run_slots(200000);
    std::printf("  sim @ W=%4d: throughput=%.3f payoff_rate=%.3e "
                "(model %.3e)\n",
                w, r.throughput, r.payoff_rate[0],
                game.homogeneous_utility_rate(w, n));
  }
  std::printf("\nDone. See selfish_wlan_study / multihop_adhoc / "
              "cw_search_demo for full scenarios.\n");
  return 0;
}
