// Scenario study: a saturated single-hop WLAN of selfish stations.
//
// The motivating situation from the paper's introduction: programmable
// wireless adapters let every station set its own contention window. What
// actually happens depends on how far-sighted the stations are:
//
//   Act 1 — long-sighted TFT population: heterogeneous initial windows
//           converge to a common NE; no collapse.
//   Act 2 — one short-sighted deviator joins: it profits for m stages,
//           then TFT retaliation drags the whole WLAN down with it.
//   Act 3 — everyone myopic (the Cagalj et al. regime the paper contrasts
//           in §VIII): best responses ratchet the windows down and the
//           network degrades.
//
// Payoffs are *measured* on the slot-level simulator (Acts 1-2) and on
// the analytical engine (Act 3, where myopic best response needs a model
// oracle).
#include <cstdio>
#include <memory>
#include <vector>

#include "game/deviation.hpp"
#include "game/equilibrium.hpp"
#include "game/repeated_game.hpp"
#include "sim/adaptive_runtime.hpp"

namespace {

using namespace smac;

void print_history(const game::History& history, std::size_t highlight) {
  for (std::size_t k = 0; k < history.size(); ++k) {
    std::printf("  stage %zu: W = [", k);
    for (std::size_t i = 0; i < history[k].cw.size(); ++i) {
      std::printf(i ? " %d" : "%d", history[k].cw[i]);
    }
    std::printf("]  payoff(node %zu) = %.1f, payoff(others) = %.1f\n",
                highlight, history[k].utility[highlight],
                history[k].utility[highlight == 0 ? 1 : 0]);
  }
}

}  // namespace

int main() {
  const phy::Parameters params = phy::Parameters::paper();
  const auto mode = phy::AccessMode::kBasic;
  const game::StageGame game(params, mode);
  const int n = 5;
  const game::EquilibriumFinder finder(game, n);
  const int w_star = finder.efficient_cw();
  std::printf("WLAN: %d saturated selfish stations, basic access, "
              "W_c* = %d\n\n", n, w_star);

  // ---- Act 1: long-sighted TFT stations with heterogeneous starts ----
  std::printf("Act 1 — all TFT, heterogeneous initial windows:\n");
  {
    std::vector<std::unique_ptr<game::Strategy>> pop;
    const int starts[] = {120, 90, 200, 76, 300};
    for (int w : starts) pop.push_back(std::make_unique<game::TitForTat>(w));
    sim::SimConfig config;
    config.mode = mode;
    config.seed = 1;
    sim::AdaptiveRuntime runtime(config, std::move(pop), 5e6);
    const auto result = runtime.play(4);
    print_history(result.history, 0);
    std::printf("  -> converged to W = %d: selfishness without collapse "
                "(within the NE band [%d, %d])\n\n",
                result.converged_cw.value_or(-1),
                finder.nash_set().w_min_viable, w_star);
  }

  // ---- Act 2: one short-sighted deviator ----
  std::printf("Act 2 — a short-sighted station (delta_s -> 0) undercuts:\n");
  {
    const int w_s =
        game::best_shortsighted_deviation(game, n, w_star, 0.05, 1).w_s;
    std::vector<std::unique_ptr<game::Strategy>> pop;
    pop.push_back(std::make_unique<game::ShortSightedStrategy>(w_s));
    for (int i = 1; i < n; ++i) {
      pop.push_back(std::make_unique<game::TitForTat>(w_star));
    }
    sim::SimConfig config;
    config.mode = mode;
    config.seed = 2;
    sim::AdaptiveRuntime runtime(config, std::move(pop), 5e6);
    const auto result = runtime.play(4);
    print_history(result.history, 0);
    const double welfare =
        game::malicious_welfare_ratio(game, n, w_star, w_s);
    std::printf("  -> deviator chose W_s = %d; after retaliation the WLAN "
                "runs at %.0f%% of the efficient welfare (Sec. V.D)\n\n",
                w_s, welfare * 100.0);
  }

  // ---- Act 3: everyone myopic ----
  std::printf("Act 3 — every station plays myopic best response:\n");
  {
    auto oracle = [&game](const std::vector<int>& profile, std::size_t self) {
      return game.utility_rates(profile)[self];
    };
    std::vector<std::unique_ptr<game::Strategy>> pop;
    for (int i = 0; i < n; ++i) {
      pop.push_back(std::make_unique<game::MyopicBestResponse>(
          w_star, params.w_max, oracle));
    }
    game::RepeatedGameEngine engine(game, std::move(pop));
    const auto result = engine.play(6);
    print_history(result.history, 0);
    const int w_end = result.history.back().cw.front();
    std::printf("  -> windows crash to W = %d in one round of best\n"
                "     responses; welfare %.0f%% of the efficient NE — the\n"
                "     short-sighted degradation of Cagalj et al. (and with\n"
                "     m = 0 backoff it would go fully negative)\n",
                w_end,
                game::malicious_welfare_ratio(game, n, w_star,
                                              std::max(1, w_end)) *
                    100.0);
  }
  return 0;
}
