// Scenario: a mixed population — laptops vs battery sensors.
//
// Half the stations are mains-powered (transmission cost e = 0.01), half
// run on batteries (configurable, default e = 0.35). The example shows
// the asymmetric game's structure: who wants which common window, what
// TFT actually delivers, what a welfare-maximizing convention would pick,
// and what raw myopic selfishness does to the battery class.
//
// All knobs are key=value arguments, e.g.:
//   ./build/examples/asymmetric_classes n_per_class=4 e_dear=0.5 mode=basic
#include <cstdio>
#include <vector>

#include "game/asymmetric.hpp"
#include "phy/energy.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace smac;
  util::Config config;
  try {
    config = util::Config::from_args(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bad arguments: %s\n", error.what());
    return 1;
  }
  const int n_per_class = config.get_int("n_per_class", 3);
  const double e_cheap = config.get_double("e_cheap", 0.01);
  const double e_dear = config.get_double("e_dear", 0.35);
  const auto mode = config.get_string("mode", "basic") == "rts-cts"
                        ? phy::AccessMode::kRtsCts
                        : phy::AccessMode::kBasic;

  const phy::Parameters params = phy::Parameters::paper();
  const game::AsymmetricGame game(
      params, mode,
      {{1.0, e_cheap, n_per_class}, {1.0, e_dear, n_per_class}});

  std::printf("population: %d mains-powered (e=%.2f) + %d battery (e=%.2f), "
              "%s access\n\n",
              n_per_class, e_cheap, n_per_class, e_dear,
              to_string(mode).c_str());

  const int w_cheap = game.preferred_common_window(0);
  const int w_dear = game.preferred_common_window(1);
  const int w_m = game.tft_outcome_window();
  const int w_welfare = game.welfare_maximizing_common_window();
  std::printf("preferred common window:  mains %d, battery %d\n", w_cheap,
              w_dear);
  std::printf("TFT converges to:         W_m = %d (the min preference)\n",
              w_m);
  std::printf("welfare-optimal common W: %d\n\n", w_welfare);

  std::printf("battery-class utility across candidate conventions:\n");
  for (int w : {w_m, w_welfare, w_dear}) {
    std::printf("  W=%4d: u_battery = %.3e, u_mains = %.3e\n", w,
                game.common_window_utility(1, w),
                game.common_window_utility(0, w));
  }

  // What happens without any convention at all.
  const auto br = game.iterated_best_response(
      std::vector<int>(static_cast<std::size_t>(2 * n_per_class), w_welfare),
      50);
  std::printf("\nmyopic free-for-all fixed point: [");
  for (std::size_t i = 0; i < br.profile.size(); ++i) {
    std::printf(i ? " %d" : "%d", br.profile[i]);
  }
  std::printf("]\n");
  const auto u = game.utility_rates(br.profile);
  std::printf("  utilities: mains %.3e, battery %.3e\n", u[0],
              u[static_cast<std::size_t>(n_per_class)]);
  std::printf(
      "  -> without the TFT convention the cheap class monopolizes the\n"
      "     channel and the battery class is priced off the air.\n");
  return 0;
}
